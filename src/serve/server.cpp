#include "serve/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace detect::serve {

const char* submit_status_name(submit_status s) noexcept {
  switch (s) {
    case submit_status::admitted: return "admitted";
    case submit_status::overloaded: return "overloaded";
    case submit_status::shutting_down: return "shutting_down";
    case submit_status::invalid_op: return "invalid_op";
  }
  return "?";
}

// ---- session handle ---------------------------------------------------------

submit_status session::submit(const hist::op_desc& op,
                              completion_fn on_complete) {
  if (srv_ == nullptr) return submit_status::invalid_op;
  return srv_->submit(id_, op, std::move(on_complete));
}

std::uint64_t session::submitted() const {
  return srv_ == nullptr ? 0 : srv_->session_snapshot(id_).submitted;
}
std::uint64_t session::admitted() const {
  return srv_ == nullptr ? 0 : srv_->session_snapshot(id_).admitted;
}
std::uint64_t session::rejected() const {
  return srv_ == nullptr ? 0 : srv_->session_snapshot(id_).rejected;
}
std::uint64_t session::completed() const {
  return srv_ == nullptr ? 0 : srv_->session_snapshot(id_).completed;
}

// ---- server -----------------------------------------------------------------

server::server(serve_config cfg)
    : cfg_(std::move(cfg)), reb_(cfg_.rebalance, cfg_.shards) {
  api::executor::builder b;
  b.backend(api::exec_backend::sharded)
      .shards(cfg_.shards)
      .procs(cfg_.procs)
      .placement(cfg_.placement)
      .pool_threads(cfg_.pool_threads)
      .max_steps(cfg_.max_steps)
      // retry is load-bearing: skip would abandon crashed ops, and an
      // admitted op that never completes breaks the serving contract.
      .fail_policy(core::runtime::fail_policy::retry)
      .persist(cfg_.persist)
      .visibility(cfg_.visibility)
      .schedule(cfg_.sched);
  if (cfg_.sched_seed) b.seed(*cfg_.sched_seed);
  if (cfg_.crash_random) {
    const auto& [s, rate, max] = *cfg_.crash_random;
    b.crash_random(s, rate, max);
  }
  ex_ = b.build();

  queues_.resize(static_cast<std::size_t>(cfg_.shards));
  seq_.resize(static_cast<std::size_t>(cfg_.shards));
  shard_stats_.resize(static_cast<std::size_t>(cfg_.shards));
  start_ = std::chrono::steady_clock::now();

  if (cfg_.threaded) {
    dispatcher_ = std::thread([this] { dispatcher_main(); });
  }
}

server::~server() {
  try {
    shutdown();
  } catch (...) {
    // A step-limit abort during destruction has nowhere to propagate; the
    // dispatcher is joined either way.
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

session server::open_session() {
  std::lock_guard lk(mu_);
  const std::uint64_t id = next_session_++;
  const int pid = static_cast<int>(id % static_cast<std::uint64_t>(cfg_.procs));
  session_record rec;
  rec.id = id;
  rec.pid = pid;
  rec.tokens = cfg_.session_tokens;
  sessions_.emplace(id, rec);
  return session(this, id, pid);
}

api::object_handle server::add(const std::string& kind,
                               const api::object_params& params) {
  std::lock_guard exec_lk(exec_mu_);
  api::object_handle h = ex_->add(kind, params);
  std::lock_guard lk(mu_);
  homes_[h.id()] = ex_->shard_of(h.id());
  return h;
}

server::session_record server::session_snapshot(std::uint64_t id) const {
  std::lock_guard lk(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? session_record{} : it->second;
}

std::uint64_t server::now_tick_locked() const {
  if (!cfg_.threaded) return rounds_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

submit_status server::submit(std::uint64_t session_id, const hist::op_desc& op,
                             completion_fn cb) {
  std::unique_lock lk(mu_);
  auto sit = sessions_.find(session_id);
  if (sit == sessions_.end()) {
    ++submitted_;
    ++rejected_invalid_;
    return submit_status::invalid_op;
  }
  session_record& rec = sit->second;
  ++rec.submitted;
  ++submitted_;

  if (stopping_) {
    ++rec.rejected;
    ++rejected_shutdown_;
    return submit_status::shutting_down;
  }
  auto home = homes_.find(op.object);
  if (home == homes_.end()) {
    ++rec.rejected;
    ++rejected_invalid_;
    return submit_status::invalid_op;
  }
  const std::size_t k = static_cast<std::size_t>(home->second);
  if (queues_[k].size() >= cfg_.queue_high_water) {
    ++rec.rejected;
    ++rejected_queue_;
    ++shard_stats_[k].rejected_queue;
    return submit_status::overloaded;
  }
  if (pending_total_ + inflight_.size() >= cfg_.global_inflight) {
    ++rec.rejected;
    ++rejected_global_;
    return submit_status::overloaded;
  }
  if (rec.tokens < 1.0) {
    ++rec.rejected;
    ++rejected_tokens_;
    return submit_status::overloaded;
  }

  rec.tokens -= 1.0;
  ++rec.admitted;
  ++admitted_;
  pending_op p;
  p.ticket = ++next_ticket_;
  p.session = session_id;
  p.pid = rec.pid;
  p.op = op;
  p.cb = std::move(cb);
  p.submit_tick = now_tick_locked();
  queues_[k].push_back(std::move(p));
  ++pending_total_;
  shard_stats_[k].max_queue_depth =
      std::max<std::uint64_t>(shard_stats_[k].max_queue_depth, queues_[k].size());

  const bool notify = cfg_.threaded;
  lk.unlock();
  if (notify) cv_work_.notify_one();
  return submit_status::admitted;
}

bool server::batch_ready_locked() const {
  for (const auto& q : queues_) {
    if (q.size() >= cfg_.batch_max_ops) return true;
  }
  return false;
}

bool server::run_round() {
  std::unique_lock exec_lk(exec_mu_);

  // Phase 1 (mu_): pop this round's batches, stamp (shard, pid, seq) keys,
  // and build the per-process scripts. Seq numbers mirror the shard worlds'
  // client_seq numbering: each world numbers a pid's ops 1.. in script
  // order, and the executor routes a pid's ops to shard scripts preserving
  // the order scripted here.
  std::map<int, std::vector<hist::op_desc>> scripts;
  std::map<std::uint32_t, std::uint64_t> round_ops;
  std::uint64_t round_no = 0;
  {
    std::lock_guard lk(mu_);
    round_no = rounds_;
    bool any = false;
    for (std::size_t k = 0; k < queues_.size(); ++k) {
      std::uint64_t took = 0;
      while (took < cfg_.batch_max_ops && !queues_[k].empty()) {
        pending_op p = std::move(queues_[k].front());
        queues_[k].pop_front();
        --pending_total_;
        ++took;

        const std::uint64_t seq = ++seq_[k][p.pid];
        inflight_rec rec;
        rec.ticket = p.ticket;
        rec.session = p.session;
        rec.object = p.op.object;
        rec.cb = std::move(p.cb);
        rec.submit_tick = p.submit_tick;
        inflight_.emplace(
            inflight_key{static_cast<int>(k), p.pid, seq}, std::move(rec));
        scripts[p.pid].push_back(p.op);
        ++round_ops[p.op.object];
      }
      if (took > 0) {
        any = true;
        ++batches_;
        ++shard_stats_[k].batches;
        shard_stats_[k].served += took;
        batch_ops_ += took;
        max_batch_ = std::max(max_batch_, took);
      }
    }
    if (!any) return false;
  }

  // Phase 2 (executor, no mu_ — submits keep landing in threaded mode).
  // Reseeding per round varies the crash points deterministically; the
  // executor would otherwise rebuild the same plan (same draw positions)
  // every round.
  if (cfg_.crash_random) {
    ex_->reseed_crashes(std::get<0>(*cfg_.crash_random) +
                        0x9E3779B97F4A7C15ULL * (round_no + 1));
  }
  for (auto& [pid, ops] : scripts) ex_->script(pid, std::move(ops));
  const sim::run_report rep = ex_->run();
  if (rep.hit_step_limit) {
    // Incomplete scripts mean lost completions; that is a configuration
    // error (max_steps too small for the service lifetime), not a state
    // this server can continue from.
    throw std::runtime_error("serve: batch round hit the step limit (" +
                             rep.limit_note + ")");
  }

  // Phase 3 (mu_): match completions, refill buckets, rebalance.
  std::vector<std::pair<completion, completion_fn>> done;
  {
    std::lock_guard lk(mu_);
    ++rounds_;  // completions of this round land at the new logical tick
    steps_ = rep.steps;
    crashes_ += rep.crashes;
    nvm_cells_ = rep.nvm_cells;
    nvm_bytes_ = rep.nvm_bytes;

    const std::vector<hist::event> evs = ex_->events();
    for (std::size_t i = scanned_events_; i < evs.size(); ++i) {
      const hist::event& e = evs[i];
      const bool completes =
          e.kind == hist::event_kind::response ||
          (e.kind == hist::event_kind::recover_result &&
           e.verdict == hist::recovery_verdict::linearized);
      if (!completes) continue;
      auto home = homes_.find(e.desc.object);
      if (home == homes_.end()) continue;
      auto it = inflight_.find(
          inflight_key{home->second, e.pid, e.desc.client_seq});
      // A missing entry is the dedupe path: a response persisted, the crash
      // landed before the client's done_seq store, and recovery re-reported
      // the op as linearized — the first event already completed the ticket.
      if (it == inflight_.end()) continue;
      inflight_rec& rec = it->second;

      completion c;
      c.ticket = rec.ticket;
      c.session = rec.session;
      c.object = rec.object;
      c.value = e.value;
      c.latency = now_tick_locked() - rec.submit_tick;
      lat_.record(c.latency);
      ++completed_;
      auto sit = sessions_.find(rec.session);
      if (sit != sessions_.end()) ++sit->second.completed;
      done.emplace_back(std::move(c), std::move(rec.cb));
      inflight_.erase(it);
    }
    scanned_events_ = evs.size();

    for (auto& [id, rec] : sessions_) {
      rec.tokens = std::min(cfg_.session_tokens, rec.tokens + cfg_.session_refill);
    }

    // Rebalance at the quiescent point. Objects still queued are frozen:
    // their queue slot encodes their home shard, which must hold until they
    // are scripted.
    reb_.record_round(round_ops);
    std::vector<std::uint32_t> frozen;
    for (const auto& q : queues_) {
      for (const pending_op& p : q) frozen.push_back(p.op.object);
    }
    const std::vector<planned_move> plan = reb_.maybe_plan(homes_, frozen);
    for (const planned_move& m : plan) {
      try {
        ex_->migrate(m.object, m.to);
      } catch (const std::invalid_argument&) {
        continue;  // e.g. object became unmovable; skip, never crash serving
      }
      homes_[m.object] = m.to;
      moves_.push_back({rounds_, m.object, m.from, m.to, reb_.last_ratio()});
    }
  }

  // Phase 4: callbacks outside both locks — they may submit follow-up ops
  // or take snapshots without deadlocking.
  exec_lk.unlock();
  for (auto& [c, cb] : done) {
    if (cb) cb(c);
  }
  cv_drained_.notify_all();
  return true;
}

bool server::pump() {
  if (cfg_.threaded) {
    throw std::logic_error(
        "serve: pump() is deterministic-mode only; the dispatcher thread "
        "owns the crank in threaded mode");
  }
  return run_round();
}

void server::drain() {
  if (!cfg_.threaded) {
    while (run_round()) {
    }
    return;
  }
  cv_work_.notify_all();
  std::unique_lock lk(mu_);
  cv_drained_.wait(lk, [&] { return pending_total_ == 0 && inflight_.empty(); });
}

void server::shutdown() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  if (cfg_.threaded) {
    if (dispatcher_.joinable()) dispatcher_.join();
  } else {
    while (run_round()) {
    }
  }
}

void server::dispatcher_main() {
  std::unique_lock lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] { return stopping_ || pending_total_ > 0; });
    if (pending_total_ == 0) {
      if (stopping_) return;
      continue;
    }
    if (!stopping_ && !batch_ready_locked()) {
      // Deadline trigger: give the batch a chance to fill, then go anyway.
      cv_work_.wait_for(lk, cfg_.batch_window,
                        [&] { return stopping_ || batch_ready_locked(); });
    }
    lk.unlock();
    run_round();
    lk.lock();
  }
}

stats server::snapshot() const {
  std::lock_guard lk(mu_);
  stats s;
  s.sessions_opened = next_session_;
  s.submitted = submitted_;
  s.admitted = admitted_;
  s.completed = completed_;
  s.inflight = pending_total_ + inflight_.size();
  s.rejected_queue = rejected_queue_;
  s.rejected_session_tokens = rejected_tokens_;
  s.rejected_global = rejected_global_;
  s.rejected_shutdown = rejected_shutdown_;
  s.rejected_invalid = rejected_invalid_;
  s.rounds = rounds_;
  s.batches = batches_;
  s.max_batch_ops = max_batch_;
  s.mean_batch_ops =
      batches_ == 0 ? 0.0
                    : static_cast<double>(batch_ops_) /
                          static_cast<double>(batches_);
  s.steps = steps_;
  s.crashes = crashes_;
  s.nvm_cells = nvm_cells_;
  s.nvm_bytes = nvm_bytes_;
  s.load_ratio_window = reb_.last_ratio();
  s.moves = moves_;
  s.shards = shard_stats_;
  for (std::size_t k = 0; k < queues_.size(); ++k) {
    s.shards[k].queue_depth = queues_[k].size();
  }
  s.p50 = lat_.quantile(0.50);
  s.p99 = lat_.quantile(0.99);
  s.latency_unit = cfg_.threaded ? "us" : "rounds";
  return s;
}

hist::check_result server::check(const hist::check_options& opt) const {
  std::lock_guard exec_lk(exec_mu_);
  return ex_->check(opt);
}

api::placement_policy server::current_assignment() const {
  std::lock_guard exec_lk(exec_mu_);
  return ex_->current_assignment();
}

std::vector<hist::event> server::events() const {
  std::lock_guard exec_lk(exec_mu_);
  return ex_->events();
}

}  // namespace detect::serve
