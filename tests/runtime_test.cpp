// Client-runtime behaviour (announcement protocol, fail policies, resumption)
// and simulator API contracts.
#include <gtest/gtest.h>

#include "baselines/stripped.hpp"
#include "core/detectable_register.hpp"
#include "core/runtime.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

TEST(world_api, submit_to_busy_process_throws) {
  sim::world w(1);
  nvm::pcell<int> c(0, w.domain());
  w.submit(0, [&] { c.load(); });
  EXPECT_THROW(w.submit(0, [] {}), std::logic_error);
  w.step(0);  // drain
}

TEST(world_api, step_non_runnable_throws) {
  sim::world w(2);
  EXPECT_THROW(w.step(0), std::logic_error);
}

TEST(world_api, pending_access_requires_yielded_process) {
  sim::world w(1);
  EXPECT_THROW(w.pending_access(0), std::logic_error);
}

TEST(world_api, nprocs_validation) {
  EXPECT_THROW(sim::world(0), std::invalid_argument);
}

TEST(world_api, crash_with_no_tasks_is_a_memory_event_only) {
  sim::world w(2);
  w.domain().set_model(nvm::cache_model::shared_cache);
  nvm::pcell<int> c(0, w.domain());
  c.store(5);  // unflushed
  w.crash();
  EXPECT_EQ(c.peek(), 0);
  EXPECT_EQ(w.domain().counters().snapshot().crashes, 1u);
}

TEST(runtime, skip_policy_gives_up_and_continues) {
  // Crash p0's first write before its checkpoint; with skip policy the op is
  // declared failed and the client moves on to the second op.
  scenario_config cfg;
  cfg.nprocs = 1;
  cfg.policy = core::runtime::fail_policy::skip;
  cfg.scripts = {{0, {op_write(1), op_write(2)}}};
  cfg.make_objects = [](sim_fixture& f,
                        std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(std::make_unique<core::detectable_register>(1, f.board, 0,
                                                               f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] {
    return std::unique_ptr<hist::spec>(new hist::register_spec(0));
  };
  bool saw_fail_and_continue = false;
  run_outcome base = run_scenario(cfg, 1);
  for (std::uint64_t k = 0; k < base.report.steps; ++k) {
    run_outcome out = run_scenario(cfg, 1, {k});
    ASSERT_TRUE(out.check.ok) << out.check.message;
    bool fail_seen = out.log_text.find("FAIL") != std::string::npos;
    bool second_op = out.log_text.find("reg_write(2)") != std::string::npos;
    if (fail_seen && second_op) saw_fail_and_continue = true;
  }
  EXPECT_TRUE(saw_fail_and_continue)
      << "some crash placement must produce a fail verdict followed by the "
         "next scripted op";
}

TEST(runtime, retry_policy_reinvokes_until_done) {
  scenario_config cfg;
  cfg.nprocs = 1;
  cfg.policy = core::runtime::fail_policy::retry;
  cfg.scripts = {{0, {op_write(7)}}};
  cfg.make_objects = [](sim_fixture& f,
                        std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(std::make_unique<core::detectable_register>(1, f.board, 0,
                                                               f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] {
    return std::unique_ptr<hist::spec>(new hist::register_spec(0));
  };
  run_outcome base = run_scenario(cfg, 1);
  for (std::uint64_t k = 0; k < base.report.steps; ++k) {
    run_outcome out = run_scenario(cfg, 1, {k});
    ASSERT_TRUE(out.check.ok) << out.check.message;
    // With retry, the write is linearized exactly once in every outcome:
    // the log's last register state must be 7. Verify via a fresh replay of
    // the checker witness: simply assert some response/verdict closed the op.
    bool closed = out.log_text.find("-> 0") != std::string::npos ||
                  out.log_text.find("verdict") != std::string::npos;
    EXPECT_TRUE(closed) << out.log_text;
  }
}

TEST(runtime, no_aux_object_keeps_announcement_raw) {
  // For wants_aux_reset()==false objects the runtime must not touch
  // Ann_p.resp / Ann_p.CP — the stale values from the previous op survive.
  sim_fixture f(1);
  core::detectable_register reg(1, f.board, 0, f.w.domain());
  base::stripped s(reg);
  f.rt.register_object(0, s);
  f.rt.set_script(0, {op_write(1), op_write(2)});
  sim::round_robin_scheduler rr;
  f.rt.run(rr);
  // After the final write, resp holds ack from the op itself (the object
  // persists it); the point is the runtime never wrote k_bottom in between —
  // observable as cp remaining at 2 from the op, never reset to 0.
  EXPECT_EQ(f.board.of(0).cp.peek(), 2);
  EXPECT_EQ(f.board.of(0).resp.peek(), hist::k_ack);
}

TEST(runtime, aux_object_gets_reset_each_invocation) {
  sim_fixture f(1);
  core::detectable_register reg(1, f.board, 0, f.w.domain());
  f.rt.register_object(0, reg);
  f.rt.set_script(0, {op_read()});  // read never touches cp
  sim::round_robin_scheduler rr;
  f.rt.run(rr);
  EXPECT_EQ(f.board.of(0).cp.peek(), 0) << "caller reset CP before the read";
}

TEST(runtime, multi_object_scripts_route_correctly) {
  sim_fixture f(1);
  core::detectable_register r0(1, f.board, 0, f.w.domain());
  core::detectable_register r1(1, f.board, 100, f.w.domain());
  f.rt.register_object(0, r0);
  f.rt.register_object(1, r1);
  f.rt.set_script(0, {op_write(5, 0), op_read(1), op_read(0)});
  sim::round_robin_scheduler rr;
  f.rt.run(rr);
  auto events = f.lg.snapshot();
  hist::value_t read1 = hist::k_bottom;
  hist::value_t read0 = hist::k_bottom;
  for (const auto& e : events) {
    if (e.kind == hist::event_kind::response &&
        e.desc.code == hist::opcode::reg_read) {
      if (e.desc.object == 1) read1 = e.value;
      if (e.desc.object == 0) read0 = e.value;
    }
  }
  EXPECT_EQ(read1, 100);
  EXPECT_EQ(read0, 5);
}

TEST(runtime, unregistered_object_is_an_error) {
  sim_fixture f(1);
  f.rt.set_script(0, {op_write(1, /*obj=*/9)});
  sim::round_robin_scheduler rr;
  EXPECT_THROW(f.rt.run(rr), std::out_of_range);
}

TEST(runtime, crash_event_logged_between_unwind_and_recovery) {
  scenario_config cfg;
  cfg.nprocs = 1;
  cfg.scripts = {{0, {op_write(1)}}};
  cfg.make_objects = [](sim_fixture& f,
                        std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(std::make_unique<core::detectable_register>(1, f.board, 0,
                                                               f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] {
    return std::unique_ptr<hist::spec>(new hist::register_spec(0));
  };
  run_outcome out = run_scenario(cfg, 1, {3});
  EXPECT_NE(out.log_text.find("== CRASH =="), std::string::npos);
  // Any recovery events must come after the crash marker.
  auto crash_pos = out.log_text.find("== CRASH ==");
  auto recover_pos = out.log_text.find("recover");
  if (recover_pos != std::string::npos) {
    EXPECT_GT(recover_pos, crash_pos);
  }
}

TEST(runtime, double_crash_pair_sweep_register) {
  scenario_config cfg;
  cfg.nprocs = 2;
  cfg.policy = core::runtime::fail_policy::retry;
  cfg.scripts = {{0, {op_write(1)}}, {1, {op_read()}}};
  cfg.make_objects = [](sim_fixture& f,
                        std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(std::make_unique<core::detectable_register>(2, f.board, 0,
                                                               f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] {
    return std::unique_ptr<hist::spec>(new hist::register_spec(0));
  };
  crash_pair_sweep(cfg, 17, /*stride=*/2);
}

}  // namespace
