// The detect::wmm subsystem: visibility-model naming, the per-process store
// buffer (forwarding, tso/pso drain slots), world-level litmus tests (store
// buffering, store-to-load forwarding, fence drains, quiescence, scripted
// drain points), scripted_scenario v6 (visibility + drain_steps lines, v5
// compat), the 500-seed determinism pin over the historical sc streams, the
// lin_memo model salt, the wmm coverage coordinates, the registry-wide
// tso/pso cleanliness sweep, and the planted store-buffer bug only the tso
// pool finds.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"
#include "nvm/pcell.hpp"
#include "sim/world.hpp"
#include "wmm/visibility.hpp"

namespace {

using namespace detect;

// Registry kinds as of static init — the tso/pso cleanliness sweep must not
// pick up the planted-bug kind later tests register.
const std::vector<std::string> g_builtin_kinds =
    api::object_registry::global().kinds();

// ---- visibility naming ------------------------------------------------------

TEST(visibility, names_round_trip) {
  for (wmm::visibility_model m :
       {wmm::visibility_model::sc, wmm::visibility_model::tso,
        wmm::visibility_model::pso}) {
    wmm::visibility_model back{};
    ASSERT_TRUE(wmm::visibility_from_name(wmm::visibility_name(m), back));
    EXPECT_EQ(back, m);
  }
  wmm::visibility_model out = wmm::visibility_model::tso;
  EXPECT_FALSE(wmm::visibility_from_name("relaxed", out));
  EXPECT_FALSE(wmm::visibility_from_name("", out));
  EXPECT_EQ(out, wmm::visibility_model::tso) << "out untouched on failure";
}

// ---- store buffer -----------------------------------------------------------

TEST(store_buffer, buffers_forward_and_expose_drain_slots) {
  nvm::pmem_domain dom;
  nvm::pcell<int> x(0, dom);
  nvm::pcell<int> y(0, dom);
  wmm::store_buffer buf;
  dom.set_active_store_buffer(&buf);
  x.store(1);
  y.store(2);
  x.store(3);
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.high_water(), 3u);
  // Newest-match forwarding: the issuing process reads its own x := 3, the
  // globally visible values are still the initial ones.
  EXPECT_EQ(x.load(), 3);
  EXPECT_EQ(y.load(), 2);
  EXPECT_EQ(x.peek(), 0);
  EXPECT_EQ(y.peek(), 0);
  int v = -1;
  EXPECT_TRUE(buf.forward(x, &v, sizeof(v)));
  EXPECT_EQ(v, 3);
  // tso exposes only the FIFO head; pso one slot per distinct buffered cell.
  EXPECT_EQ(buf.slots(wmm::visibility_model::tso), 1u);
  EXPECT_EQ(buf.slots(wmm::visibility_model::pso), 2u);
  dom.set_active_store_buffer(nullptr);

  // pso slot 1 is the second distinct cell in first-occurrence order: y.
  buf.drain_slot(wmm::visibility_model::pso, 1);
  EXPECT_EQ(y.peek(), 2);
  EXPECT_EQ(x.peek(), 0);
  // Same-cell stores still retire FIFO: slot 0 drains x := 1 before x := 3.
  buf.drain_slot(wmm::visibility_model::pso, 0);
  EXPECT_EQ(x.peek(), 1);
  buf.drain_all();
  EXPECT_EQ(x.peek(), 3);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.high_water(), 3u) << "high water survives draining";
}

TEST(store_buffer, discard_drops_stores_and_keeps_high_water) {
  nvm::pmem_domain dom;
  nvm::pcell<int> x(0, dom);
  wmm::store_buffer buf;
  dom.set_active_store_buffer(&buf);
  x.store(9);
  x.store(10);
  dom.set_active_store_buffer(nullptr);
  buf.discard();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(x.peek(), 0) << "discarded stores never happened";
  EXPECT_EQ(buf.high_water(), 2u);
}

// ---- world litmus tests -----------------------------------------------------

sim::world_config tso_world() {
  sim::world_config cfg;
  cfg.visibility = wmm::visibility_model::tso;
  return cfg;
}

// The classic SB litmus test: both processes store then load the other's
// cell. r0 == r1 == 0 is impossible under any interleaving (sc) but is the
// signature tso outcome — both stores sit in their buffers past both loads.
TEST(wmm_world, store_buffering_litmus_reads_both_stale) {
  sim::world w(2, tso_world());
  nvm::pcell<int> x(0, w.domain());
  nvm::pcell<int> y(0, w.domain());
  int r0 = -1;
  int r1 = -1;
  w.submit(0, [&] {
    x.store(1);
    r0 = y.load();
  });
  w.submit(1, [&] {
    y.store(1);
    r1 = x.load();
  });
  w.step(0);  // x := 1 enters p0's buffer
  w.step(1);  // y := 1 enters p1's buffer
  EXPECT_EQ(x.peek(), 0);
  EXPECT_EQ(y.peek(), 0);
  w.step(0);  // p0 reads y from memory
  w.step(1);  // p1 reads x from memory
  EXPECT_EQ(r0, 0);
  EXPECT_EQ(r1, 0);
  // Quiescence: a run over the now-idle world retires both buffers as
  // counted drain steps, converging on the state sc would have reached.
  sim::round_robin_scheduler rr;
  sim::run_report rep = w.run(rr);
  EXPECT_EQ(x.peek(), 1);
  EXPECT_EQ(y.peek(), 1);
  EXPECT_EQ(rep.drain_steps, 2u);
  EXPECT_EQ(rep.max_pending_stores, 1u);
}

TEST(wmm_world, own_buffered_store_forwards_before_draining) {
  sim::world w(1, tso_world());
  nvm::pcell<int> x(0, w.domain());
  int r = -1;
  w.submit(0, [&] {
    x.store(7);
    r = x.load();
  });
  w.step(0);
  EXPECT_EQ(x.peek(), 0);
  w.step(0);
  EXPECT_EQ(r, 7) << "store-to-load forwarding";
  EXPECT_EQ(x.peek(), 0) << "forwarding does not drain";
}

// Atomic RMWs are fences: the low-level step API drains the issuing
// process's whole buffer before granting the access.
TEST(wmm_world, rmw_fences_drain_the_buffer_first) {
  sim::world w(1, tso_world());
  nvm::pcell<int> x(0, w.domain());
  nvm::pcell<int> y(0, w.domain());
  w.submit(0, [&] {
    x.store(3);
    int e = 0;
    y.compare_exchange(e, 1);
  });
  w.step(0);
  EXPECT_EQ(x.peek(), 0);
  ASSERT_EQ(w.pending_access(0), nvm::access::shared_cas);
  w.step(0);
  EXPECT_EQ(x.peek(), 3) << "the CAS must not execute past the buffer";
  EXPECT_EQ(y.peek(), 1);
}

// A scripted drain point publishes every buffer as one step: with the point,
// a reader scheduled right after the writer sees the store; without it, the
// same schedule reads stale.
TEST(wmm_world, scripted_drain_point_publishes_buffered_stores) {
  for (bool with_point : {false, true}) {
    sim::world_config cfg = tso_world();
    if (with_point) cfg.drain_points = {1};
    sim::world w(2, cfg);
    nvm::pcell<int> x(0, w.domain());
    int r1 = -1;
    w.submit(0, [&] { x.store(1); });
    w.submit(1, [&] { r1 = x.load(); });
    sim::scripted_scheduler sched({0});
    sim::run_report rep = w.run(sched);
    EXPECT_EQ(r1, with_point ? 1 : 0) << "with_point=" << with_point;
    EXPECT_GE(rep.drain_steps, 1u);
  }
}

TEST(wmm_world, crash_discards_buffered_stores) {
  sim::world w(1, tso_world());
  nvm::pcell<int> x(0, w.domain());
  w.submit(0, [&] {
    x.store(5);
    x.load();  // park at a second access so the crash interrupts the task
  });
  w.step(0);
  EXPECT_EQ(x.peek(), 0);
  w.crash();
  sim::round_robin_scheduler rr;
  w.run(rr);  // quiescence has nothing to retire
  EXPECT_EQ(x.peek(), 0) << "a crashed store buffer never drains";
}

// ---- executor gating --------------------------------------------------------

TEST(wmm_executor, threads_backend_rejects_relaxed_visibility) {
  api::exec_policy p;
  p.backend = api::exec_backend::threads;
  p.wcfg.visibility = wmm::visibility_model::tso;
  EXPECT_THROW(api::make_executor(p), std::invalid_argument);
  p.wcfg.visibility = wmm::visibility_model::pso;
  EXPECT_THROW(api::make_executor(p), std::invalid_argument);
  p.wcfg.visibility = wmm::visibility_model::sc;
  EXPECT_NO_THROW(api::make_executor(p));
}

// ---- scripted_scenario v6 ---------------------------------------------------

TEST(replay_v6, visibility_and_drain_steps_round_trip) {
  api::scripted_scenario s = fuzz::generate(21, "counter");
  s.visibility = wmm::visibility_model::tso;
  s.drain_steps = {3, 9};
  const std::string text = api::dump(s);
  EXPECT_NE(text.find("# detect scripted_scenario v6"), std::string::npos);
  EXPECT_NE(text.find("visibility tso"), std::string::npos) << text;
  EXPECT_NE(text.find("drain_steps 3 9"), std::string::npos) << text;
  api::scripted_scenario rt = api::parse_scenario(text);
  EXPECT_EQ(rt.visibility, wmm::visibility_model::tso);
  EXPECT_EQ(rt.drain_steps, s.drain_steps);
  EXPECT_EQ(api::dump(rt), text);
  api::scripted_outcome a = api::replay(s);
  api::scripted_outcome b = api::replay(rt);
  EXPECT_EQ(a.log_text, b.log_text);
  EXPECT_EQ(a.report.steps, b.report.steps);
  EXPECT_TRUE(a.check.ok) << a.check.message;
}

// v5 dumps carry no visibility/drain lines and parse as sc — exactly the
// interleaving semantics those replays always had — then replay
// byte-identically to their v6 re-dump.
TEST(replay_v6, v5_dumps_parse_as_sc_and_replay_byte_identically) {
  const std::string v5_text =
      "# detect scripted_scenario v5\n"
      "object 0 cas 0 64\n"
      "object 1 reg 0 64\n"
      "procs 2\n"
      "policy skip\n"
      "shared_cache 0\n"
      "sched_seed 77\n"
      "sched uniform_random\n"
      "persist strict\n"
      "backend sharded\n"
      "shards 2\n"
      "placement hash\n"
      "crash_steps\n"
      "script 0 cas:0:1 reg_write:3:0@1\n"
      "script 1 cas_read:0:0 reg_read:0:0@1\n";
  api::scripted_scenario s = api::parse_scenario(v5_text);
  EXPECT_EQ(s.visibility, wmm::visibility_model::sc);
  EXPECT_TRUE(s.drain_steps.empty());
  api::scripted_outcome a = api::replay(s);
  const std::string v6_text = api::dump(s);
  EXPECT_NE(v6_text.find("visibility sc"), std::string::npos) << v6_text;
  api::scripted_scenario rt = api::parse_scenario(v6_text);
  api::scripted_outcome b = api::replay(rt);
  EXPECT_EQ(a.log_text, b.log_text);
  EXPECT_EQ(a.report.steps, b.report.steps);
  EXPECT_TRUE(a.check.ok);
}

TEST(replay_v6, parse_rejects_unknown_visibility_models) {
  const std::string head =
      "object 0 reg 0 64\n"
      "procs 1\n"
      "script 0 reg_read:0:0\n";
  EXPECT_THROW(api::parse_scenario("visibility weak\n" + head),
               std::invalid_argument);
  EXPECT_THROW(api::parse_scenario("visibility\n" + head),
               std::invalid_argument);
}

// ---- determinism pin --------------------------------------------------------

std::uint64_t fnv(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// Strip the header comment and the v6 lines, leaving exactly the v5 payload
// the pre-wmm golden hashes were captured over.
std::string filter_dump(const std::string& text) {
  std::string out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.rfind("# ", 0) == 0) continue;
    if (line.rfind("visibility ", 0) == 0) continue;
    if (line.rfind("drain_steps", 0) == 0) continue;
    out += line;
    out += '\n';
  }
  return out;
}

// The wmm acceptance pin: the historical seed streams are untouched. 500
// schedule- and persistency-mixed scenarios (the check_parallel corpus
// recipe) must generate, dump, replay, and check to the exact pre-wmm golden
// hash once the v6 lines are filtered out — the visibility draw consumes rng
// only when the pool is non-default, and sc replays take the buffer-free
// fast path, so nothing downstream may shift by a single byte.
TEST(wmm_determinism, sc_seed_streams_match_the_pre_wmm_golden_hashes) {
  fuzz::gen_config cfg;
  cfg.max_procs = 3;
  cfg.max_ops = 6;
  cfg.max_shards = 3;
  cfg.max_objects = 3;
  cfg.object_kind_pool = {"reg", "cas", "counter", "queue", "stack"};
  cfg.sched_pool = {"round_robin", "uniform_random", "pct"};
  cfg.persist_pool = {"strict", "buffered"};
  const std::vector<std::string> kinds = {"reg",   "cas",     "counter",
                                          "queue", "stack",   "swap",
                                          "tas",   "max_reg", "lock"};
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    api::scripted_scenario s =
        fuzz::generate(seed, kinds[seed % kinds.size()], cfg);
    EXPECT_EQ(s.visibility, wmm::visibility_model::sc);
    EXPECT_TRUE(s.drain_steps.empty());
    h = fnv(h, filter_dump(api::dump(s)));
    api::scripted_outcome out = api::replay(s);
    h = fnv(h, out.log_text);
    h = fnv(h, out.check.message);
    h = fnv(h, std::to_string(out.report.steps));
  }
  EXPECT_EQ(h, 18241611561182990775ULL);

  std::uint64_t hm = 1469598103934665603ULL;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    api::scripted_scenario s =
        fuzz::generate(seed, kinds[seed % kinds.size()], cfg);
    std::uint64_t rng = seed * 7919 + 1;
    api::scripted_scenario m = fuzz::mutate(s, rng, cfg);
    hm = fnv(hm, filter_dump(api::dump(m)));
  }
  EXPECT_EQ(hm, 4661788257893819786ULL);
}

// ---- generator pools --------------------------------------------------------

TEST(scenario_gen_wmm, mixed_pool_reaches_every_visibility_model) {
  fuzz::gen_config cfg;
  cfg.visibility_pool = {"sc", "tso", "pso"};
  std::set<wmm::visibility_model> models;
  bool saw_drains = false;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "counter", cfg);
    EXPECT_EQ(api::dump(s), api::dump(fuzz::generate(seed, "counter", cfg)));
    models.insert(s.visibility);
    if (s.visibility == wmm::visibility_model::sc) {
      EXPECT_TRUE(s.drain_steps.empty()) << "sc scenarios carry no drains";
    } else {
      EXPECT_LE(s.drain_steps.size(), 3u);
      saw_drains = saw_drains || !s.drain_steps.empty();
    }
  }
  EXPECT_EQ(models.size(), 3u);
  EXPECT_TRUE(saw_drains) << "non-sc draws must materialize drain points";
}

// ---- lin_memo model salt ----------------------------------------------------

// A single-process scenario produces byte-identical per-object event streams
// under sc and tso (its own forwarding hides the buffer; quiescence drains
// at run end), which is exactly the laundering hazard: without the model
// salt, the tso check would be satisfied from the recorded sc verdict.
TEST(lin_memo_salt, model_pairs_never_share_memo_entries) {
  api::scripted_scenario s;
  s.objects.push_back({0, "reg", {}});
  s.nprocs = 1;
  s.scripts[0] = {{0, hist::opcode::reg_write, 5, 0, 0},
                  {0, hist::opcode::reg_read, 0, 0, 0}};

  hist::lin_memo memo;
  hist::check_options opt;
  opt.memo = &memo;
  EXPECT_TRUE(api::replay(s, opt).check.ok);
  const std::size_t m1 = memo.misses();
  EXPECT_GT(m1, 0u);
  EXPECT_EQ(memo.hits(), 0u);

  // The same model pair replays straight out of the memo ...
  EXPECT_TRUE(api::replay(s, opt).check.ok);
  EXPECT_EQ(memo.misses(), m1);
  const std::size_t h1 = memo.hits();
  EXPECT_GT(h1, 0u);

  // ... but the identical event stream under tso must compute fresh.
  api::scripted_scenario t = s;
  t.visibility = wmm::visibility_model::tso;
  api::scripted_outcome tso1 = api::replay(t, opt);
  EXPECT_TRUE(tso1.check.ok) << tso1.check.message;
  EXPECT_EQ(memo.hits(), h1) << "tso lookups must not hit sc entries";
  EXPECT_GT(memo.misses(), m1);

  // The tso entries themselves are reusable under tso.
  const std::size_t m2 = memo.misses();
  EXPECT_TRUE(api::replay(t, opt).check.ok);
  EXPECT_EQ(memo.misses(), m2);
  EXPECT_GT(memo.hits(), h1);
}

// ---- coverage coordinates ---------------------------------------------------

TEST(coverage_wmm, bucket_keys_carry_visibility_and_pending_depth) {
  api::scripted_scenario s = fuzz::generate(3, "counter");
  api::scripted_outcome out = api::replay(s);
  const std::string sc_key = fuzz::bucket_of(s, out).key();
  EXPECT_NE(sc_key.find("|vis=sc"), std::string::npos) << sc_key;
  EXPECT_NE(sc_key.find("|pend=0"), std::string::npos) << sc_key;

  api::scripted_scenario t = s;
  t.visibility = wmm::visibility_model::tso;
  api::scripted_outcome tout = api::replay(t);
  const fuzz::bucket_signature sig = fuzz::bucket_of(t, tout);
  EXPECT_NE(sig.key().find("|vis=tso"), std::string::npos) << sig.key();
  EXPECT_EQ(sig.pending_bucket,
            std::min<std::uint64_t>(tout.report.max_pending_stores, 3));
}

// ---- the planted store-buffer bug -------------------------------------------

// A counter whose mutual exclusion is correct under interleaving semantics
// but breaks under delayed store visibility: ctr_add takes an intent-flag
// lock (publish own flag with a plain store, then check everyone else's),
// reads the total, and writes back total + delta, returning the old total.
// The flag protocol's safety argument is a pure interleaving cycle — if two
// processes were both inside, each one's flag check would have to precede
// the other's flag set, which is impossible under sc. Under tso/pso both
// sets can sit in store buffers while both checks read 0 from memory, so
// both processes enter, read the same old total, and the two adds collapse
// into one: two ctr_adds return the same old value, which no sequential
// counter permits.
struct tso_reg_counter final : core::detectable_object {
  tso_reg_counter(int nprocs, hist::value_t init, nvm::pmem_domain& dom)
      : count_(init, dom) {
    intent_.reserve(static_cast<std::size_t>(nprocs));
    for (int p = 0; p < nprocs; ++p) {
      intent_.push_back(std::make_unique<nvm::pcell<std::uint8_t>>(0, dom));
    }
  }

  hist::value_t invoke(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::ctr_read:
        return count_.load();
      case hist::opcode::ctr_add: {
        acquire(pid);
        const hist::value_t old = count_.load();
        count_.store(old + op.a);
        intent_[static_cast<std::size_t>(pid)]->store(0);  // release
        return old;
      }
      default:
        throw std::invalid_argument("tso_reg_counter: unsupported opcode");
    }
  }
  core::recovery_result recover(int, const hist::op_desc&) override {
    return core::recovery_result::failed();
  }
  bool wants_aux_reset() const override { return false; }

 private:
  void acquire(int pid) {
    for (;;) {
      intent_[static_cast<std::size_t>(pid)]->store(1);
      bool alone = true;
      for (std::size_t q = 0; q < intent_.size(); ++q) {
        if (static_cast<int>(q) != pid && intent_[q]->load() != 0) {
          alone = false;
          break;
        }
      }
      if (alone) return;
      intent_[static_cast<std::size_t>(pid)]->store(0);  // back off, retry
    }
  }

  nvm::pcell<hist::value_t> count_;
  std::vector<std::unique_ptr<nvm::pcell<std::uint8_t>>> intent_;
};

void register_tso_counter_once() {
  auto& reg = api::object_registry::global();
  if (reg.contains("test_tso_reg")) return;
  api::kind_info info;
  info.name = "test_tso_reg";
  info.family = api::op_family::counter;
  info.detectable = false;
  info.make = [](const api::object_env& e, const api::object_params& p) {
    api::created_object c;
    c.owned.push_back(
        std::make_unique<tso_reg_counter>(e.nprocs, p.init, e.domain));
    return c;
  };
  info.make_spec = [](const api::object_params& p) {
    return api::object_registry::global().make_spec("counter", p);
  };
  reg.add(std::move(info));
}

fuzz::gen_config tso_pool_cfg() {
  fuzz::gen_config cfg;
  cfg.visibility_pool = {"tso"};
  return cfg;
}

bool tso_bug_fires(const api::scripted_scenario& s) {
  return !api::replay(s).check.ok;
}

// Pinned budgets, calibrated by scanning seeds 1..200: the sc pool never
// fires the bug; the tso pool — the identical scenarios, the visibility
// draw being the generator's final rng consumption — first fires at the
// seed pinned below.
constexpr std::uint64_t k_tso_seed_budget = 200;
constexpr std::uint64_t k_first_tso_seed = 34;

// The wmm acceptance bar: within the same pinned seed budget, the tso pool
// finds the planted store-buffer bug and the sc pool misses it — no
// interleaving produces the doubled old value, only delayed drains do.
TEST(planted_tso_bug, tso_pool_finds_it_where_sc_misses) {
  register_tso_counter_once();
  std::uint64_t first_tso = 0;
  for (std::uint64_t seed = 1; seed <= k_tso_seed_budget; ++seed) {
    api::scripted_scenario sc = fuzz::generate(seed, "test_tso_reg");
    EXPECT_EQ(sc.visibility, wmm::visibility_model::sc);
    EXPECT_FALSE(tso_bug_fires(sc))
        << "the sc pool found the planted tso bug at seed " << seed;
    if (first_tso == 0) {
      api::scripted_scenario t =
          fuzz::generate(seed, "test_tso_reg", tso_pool_cfg());
      EXPECT_EQ(t.visibility, wmm::visibility_model::tso);
      if (tso_bug_fires(t)) first_tso = seed;
    }
  }
  EXPECT_EQ(first_tso, k_first_tso_seed)
      << "the tso pool must find the planted bug within the pinned budget";
}

// ... and the shrinker keeps the failure tso (the sc canonicalization
// replays clean, so pass 0 rejects it) while cutting the scripted drain
// points down to at most two.
TEST(planted_tso_bug, shrinker_keeps_tso_and_minimizes_drains) {
  register_tso_counter_once();
  api::scripted_scenario p =
      fuzz::generate(k_first_tso_seed, "test_tso_reg", tso_pool_cfg());
  ASSERT_TRUE(tso_bug_fires(p));
  api::scripted_scenario shrunk = fuzz::shrink(p, tso_bug_fires);
  EXPECT_TRUE(tso_bug_fires(shrunk));
  EXPECT_EQ(shrunk.visibility, wmm::visibility_model::tso)
      << "the bug needs delayed drains; canonicalizing to sc must fail";
  EXPECT_LE(shrunk.drain_steps.size(), 2u);
}

// ---- registry-wide cleanliness ----------------------------------------------

// Every real kind stays clean under tso and pso: the runtime's response
// logging is a fence (private_store), so an operation's buffered stores
// drain before it completes — completed-operation visibility violations are
// structurally impossible, and only deliberately intra-op-racy objects like
// tso_reg_counter above can fail.
TEST(wmm_registry, builtin_kinds_stay_clean_under_tso_and_pso) {
  for (const char* model : {"tso", "pso"}) {
    fuzz::gen_config cfg;
    cfg.visibility_pool = {model};
    for (const std::string& kind : g_builtin_kinds) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        api::scripted_scenario s = fuzz::generate(seed, kind, cfg);
        EXPECT_EQ(wmm::visibility_name(s.visibility), std::string(model));
        api::scripted_outcome out = api::replay(s);
        EXPECT_TRUE(out.check.ok) << model << " " << kind << " seed " << seed
                                  << ": " << out.check.message;
      }
    }
  }
}

// ---- schedule description ---------------------------------------------------

TEST(wmm_describe, schedule_description_names_the_visibility_model) {
  auto h = api::harness::builder()
               .procs(2)
               .visibility(wmm::visibility_model::tso)
               .build();
  api::counter c = h.add_counter();
  h.script(0, {c.add(1)});
  h.script(1, {c.add(1)});
  h.run();
  const std::string d = h.world().describe_schedule();
  EXPECT_NE(d.find("visibility tso"), std::string::npos) << d;
  EXPECT_NE(d.find("pending stores"), std::string::npos) << d;
  EXPECT_EQ(d.find("(no scheduler)"), std::string::npos) << d;
}

TEST(wmm_describe, step_limit_note_names_the_visibility_model) {
  sched::sched_policy pct;
  pct.strat = sched::strategy::pct;
  pct.pct_points = {2};
  auto h = api::harness::builder()
               .procs(2)
               .seed(11)
               .schedule(pct)
               .visibility(wmm::visibility_model::tso)
               .max_steps(4)
               .build();
  api::counter c = h.add_counter();
  h.script(0, {c.add(1), c.read()});
  h.script(1, {c.add(1)});
  sim::run_report r = h.run();
  ASSERT_TRUE(r.hit_step_limit);
  EXPECT_NE(r.limit_note.find("visibility tso"), std::string::npos)
      << r.limit_note;
  EXPECT_NE(r.limit_note.find("pending stores"), std::string::npos)
      << r.limit_note;
}

}  // namespace
