// detect::fuzz — registry-driven workload generation and differential
// crash-fuzzing over the detect::api façade.
//
//   scenario_gen.hpp  seed → multi-object scripted_scenario synthesis, plus
//                     the structural mutation engine steering feeds on
//   coverage.hpp      bucket signatures + the campaign coverage map
//   differ.hpp        differential replay against baseline/stripped variants
//   shrinker.hpp      greedy minimization of failing scenarios
//   fuzzer.hpp        the campaign engine (generate/mutate → check → diff →
//                     bucket → shrink)
//   campaign.hpp      campaign_config + the multi-process (--jobs N)
//                     supervisor that partitions an iteration range over
//                     forked workers and merges their coverage
//
// The standing adversary for every registry kind: tests/fuzz_test.cpp runs
// it over the whole registry, fuzz_main drives long budgeted campaigns, and
// CI replays a bounded campaign on every push.
#pragma once

#include "fuzz/campaign.hpp"      // IWYU pragma: export
#include "fuzz/coverage.hpp"      // IWYU pragma: export
#include "fuzz/differ.hpp"        // IWYU pragma: export
#include "fuzz/fuzzer.hpp"        // IWYU pragma: export
#include "fuzz/scenario_gen.hpp"  // IWYU pragma: export
#include "fuzz/shrinker.hpp"      // IWYU pragma: export
