// Bounded exhaustive schedule exploration.
//
// Enumerates interleavings (and, optionally, crash placements) of a small
// scenario by deterministic replay: the simulator is fully deterministic
// given the sequence of choices, so a DFS over choice sequences visits each
// distinct schedule exactly once. Each run reconstructs the scenario from
// scratch via the factory.
//
// Full interleaving exploration is exponential in the total step count, so
// the explorer supports *preemption bounding* (Musuvathi & Qadeer's CHESS
// discipline): a context switch away from a process that could still run
// consumes one unit of a preemption budget; switches at points where the
// current process blocked or finished are free. Empirically, most
// concurrency bugs — including every recovery bug the paper's constructions
// guard against — manifest within one or two preemptions, while the schedule
// count collapses from exponential to polynomial.
//
// At every decision point the options are: keep running the current process,
// preempt to another runnable one (budget permitting), or deliver a
// system-wide crash (its own budget; crashes do not consume preemptions).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/world.hpp"

namespace detect::sim {

/// One instance of the scenario under exploration. The explorer drives
/// `get_world()` step by step; `on_crash()` is invoked after each delivered
/// crash (resubmit recovery tasks there); `at_end()` verifies the outcome and
/// throws std::runtime_error to report a violation.
class exploration {
 public:
  virtual ~exploration() = default;
  virtual world& get_world() = 0;
  virtual void on_crash() = 0;
  virtual void at_end() = 0;
};

struct explore_config {
  int max_crashes = 0;      // crash placements to enumerate per run
  int max_preemptions = -1;  // CHESS bound; -1 = unbounded (full exploration)
  std::uint64_t max_runs = 5'000'000;
  std::uint64_t max_depth = 100'000;  // prune deeper runs
};

struct explore_result {
  std::uint64_t runs = 0;
  std::uint64_t pruned = 0;
  bool complete = false;  // whole (bounded) tree visited within max_runs
  bool failed = false;
  std::string failure;            // first violation, with its decision path
  std::vector<int> failing_path;  // choice indices reproducing the violation
};

explore_result explore_schedules(
    const std::function<std::unique_ptr<exploration>()>& factory,
    const explore_config& cfg);

}  // namespace detect::sim
