// Explicit-state model of Algorithm 2 for Theorem 1 (experiment E2).
//
// Theorem 1: any obstruction-free detectable CAS implementation over a value
// domain of size ≥ N has at least 2^N − 1 reachable configurations, pairwise
// distinct in shared memory. For Algorithm 2, the shared memory is the single
// cell C = ⟨value, vec⟩, so the count of reachable distinct (value, vec)
// pairs is the quantity of interest.
//
// Three instruments, strongest to fastest:
//  * `bfs_configurations` — exhaustive BFS over a faithful line-by-line small-
//    step encoding of Algorithm 2 (operations, crashes, recoveries). Exact
//    reachable counts for small N.
//  * `quiescent_reachability` — BFS over quiescent configurations only, using
//    the derived transition "from shared state (v, vec), a solo successful
//    Cas_p(v, v′) reaches (v′, vec ⊕ e_p)". Validated against the full BFS on
//    small N; scales to N ≈ 24.
//  * `gray_code_walk` — a constructive schedule that drives the model through
//    2^N distinct vec values by flipping one process's bit at a time (each
//    flip is one solo successful CAS), i.e. an explicit witness for the
//    2^N − 1 lower bound on the implementation.
#pragma once

#include <cstdint>
#include <string>

namespace detect::theory {

struct config_count {
  std::uint64_t total_configs = 0;     // distinct full configurations explored
  std::uint64_t shared_configs = 0;    // distinct shared (value, vec) states
  bool complete = true;                // false if the state cap was hit
};

/// Exhaustive BFS over the full model. `nprocs` processes, value domain
/// {0..domain-1}, operation universe Cas(i, (i+1) mod domain) for all i, with
/// system-wide crashes and recoveries included. `max_states` caps the search.
config_count bfs_configurations(int nprocs, int domain,
                                std::uint64_t max_states = 20'000'000);

/// BFS over quiescent shared states only (derived solo-success transition).
config_count quiescent_reachability(int nprocs, int domain);

/// Drive the model along a Gray-code schedule visiting 2^nprocs distinct vec
/// values; returns the number of distinct shared states visited.
std::uint64_t gray_code_walk(int nprocs, int domain);

/// 2^n − 1 with saturation, for printing the bound column.
std::uint64_t theorem1_bound(int nprocs);

}  // namespace detect::theory
