#include "api/placement.hpp"

#include <sstream>
#include <stdexcept>

namespace detect::api {

namespace {

/// splitmix64 finalizer — the same mix the fuzzer's iteration_seed uses, so
/// the hash placement inherits its avalanche quality.
std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* placement_name(placement_kind k) noexcept {
  switch (k) {
    case placement_kind::modulo: return "modulo";
    case placement_kind::hash: return "hash";
    case placement_kind::range: return "range";
    case placement_kind::pinned: return "pinned";
  }
  return "?";
}

placement_kind placement_from_name(const std::string& name) {
  if (name == "modulo") return placement_kind::modulo;
  if (name == "hash") return placement_kind::hash;
  if (name == "range") return placement_kind::range;
  if (name == "pinned") return placement_kind::pinned;
  throw std::invalid_argument("placement_from_name: unknown placement '" +
                              name + "'");
}

int placement_policy::shard_of(std::uint32_t id, std::size_t decl_index,
                               int shards) const {
  const std::uint64_t k = static_cast<std::uint64_t>(shards);
  switch (kind) {
    case placement_kind::modulo:
      return static_cast<int>(id % k);
    case placement_kind::hash:
      return static_cast<int>(splitmix64(id) % k);
    case placement_kind::range:
      return static_cast<int>((decl_index / k_range_block_size) % k);
    case placement_kind::pinned: {
      auto it = pins.find(id);
      if (it != pins.end()) return it->second;
      return static_cast<int>(id % k);  // unpinned ids fall back to modulo
    }
  }
  throw std::logic_error("placement_policy: unhandled kind");
}

void placement_policy::validate(int shards) const {
  if (kind != placement_kind::pinned) return;
  for (const auto& [id, shard] : pins) {
    if (shard < 0 || shard >= shards) {
      throw std::invalid_argument(
          "placement: pinned map routes object " + std::to_string(id) +
          " to shard " + std::to_string(shard) + ", but the policy has " +
          std::to_string(shards) + " shard(s) (valid shards are 0.." +
          std::to_string(shards - 1) + ")");
    }
  }
}

std::string placement_policy::to_string() const {
  std::ostringstream os;
  os << placement_name(kind);
  if (kind == placement_kind::pinned) {
    for (const auto& [id, shard] : pins) os << " " << id << ":" << shard;
  }
  return os.str();
}

placement_policy placement_policy::parse(const std::string& text) {
  std::istringstream in(text);
  std::string name;
  if (!(in >> name)) {
    throw std::invalid_argument("placement: missing placement name");
  }
  placement_policy p;
  p.kind = placement_from_name(name);
  std::string tok;
  while (in >> tok) {
    if (p.kind != placement_kind::pinned) {
      throw std::invalid_argument("placement: unexpected token '" + tok +
                                  "' after '" + name + "'");
    }
    const std::size_t colon = tok.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == tok.size()) {
      throw std::invalid_argument("placement: bad pin token '" + tok +
                                  "' (want id:shard)");
    }
    unsigned long long id = 0;
    long shard = 0;
    try {
      std::size_t used = 0;
      const std::string id_text = tok.substr(0, colon);
      id = std::stoull(id_text, &used);
      if (used != id_text.size() || id_text[0] == '-' || id > 0xFFFFFFFFull) {
        throw std::invalid_argument(id_text);
      }
      const std::string shard_text = tok.substr(colon + 1);
      shard = std::stol(shard_text, &used);
      // Negative shards can never validate; reject them here, where the
      // offending token is known, like the migrate-line parser does.
      if (used != shard_text.size() || shard < 0) {
        throw std::invalid_argument(shard_text);
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("placement: bad pin token '" + tok +
                                  "' (want id:shard)");
    }
    auto [it, inserted] =
        p.pins.emplace(static_cast<std::uint32_t>(id), static_cast<int>(shard));
    if (!inserted) {
      throw std::invalid_argument("placement: duplicate pin for object " +
                                  std::to_string(it->first));
    }
  }
  return p;
}

placement_policy pinned_placement(std::map<std::uint32_t, int> pins) {
  placement_policy p;
  p.kind = placement_kind::pinned;
  p.pins = std::move(pins);
  return p;
}

double load_ratio(const std::vector<std::uint64_t>& per_shard_load) noexcept {
  if (per_shard_load.empty()) return 0.0;
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (std::uint64_t n : per_shard_load) {
    total += n;
    if (n > max) max = n;
  }
  if (total == 0) return 0.0;
  const double ideal =
      static_cast<double>(total) / static_cast<double>(per_shard_load.size());
  return static_cast<double>(max) / ideal;
}

}  // namespace detect::api
