// Uniform interface of detectable (recoverable) objects.
//
// `invoke` executes the operation to completion; under the simulator it may
// unwind with nvm::crashed at any step. `recover` is the operation's recovery
// function Op.Recover (§2): called with the same descriptor the operation was
// invoked with, it must decide whether the interrupted operation was
// linearized — returning its response if so, `fail` otherwise — and it may
// itself be interrupted and re-entered arbitrarily often.
#pragma once

#include "core/announce.hpp"
#include "history/event.hpp"

namespace detect::core {

struct recovery_result {
  hist::recovery_verdict verdict = hist::recovery_verdict::fail;
  value_t response = hist::k_bottom;

  static recovery_result failed() { return {}; }
  static recovery_result linearized(value_t v) {
    return {hist::recovery_verdict::linearized, v};
  }
};

class detectable_object {
 public:
  virtual ~detectable_object() = default;

  virtual value_t invoke(int pid, const hist::op_desc& op) = 0;
  virtual recovery_result recover(int pid, const hist::op_desc& op) = 0;

  /// Whether the caller must provide auxiliary state (reset Ann_p.resp to ⊥
  /// and Ann_p.CP to 0) before each invocation. Algorithm 3 (max register)
  /// returns false — the point of §5's separation. The `stripped_*` wrappers
  /// return false to demonstrate the Theorem-2 violation.
  virtual bool wants_aux_reset() const { return true; }
};

}  // namespace detect::core
