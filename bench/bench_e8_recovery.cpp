// E8 — Crash-recovery behaviour under increasing crash rates.
//
// For each crash rate, run mixed workloads over Algorithms 1-3 + the queue,
// with every run verified for durable linearizability + detectability, and
// report: completed operations, crashes survived, recovery verdicts
// (linearized vs fail), and verification outcome. This is the "system" view
// of detectability: after every crash each client knows exactly whether its
// interrupted operation took effect.
#include "api/api.hpp"
#include "bench_util.hpp"

namespace {

using namespace detect;

struct outcome {
  std::uint64_t completed_ops = 0;
  std::uint64_t crashes = 0;
  std::uint64_t verdict_linearized = 0;
  std::uint64_t verdict_fail = 0;
  int runs_checked = 0;
  int runs_ok = 0;
};

outcome sweep(double crash_rate, int seeds) {
  outcome out;
  for (int seed = 1; seed <= seeds; ++seed) {
    auto h = api::harness::builder()
                 .procs(3)
                 .fail_policy(core::runtime::fail_policy::retry)
                 .seed(static_cast<std::uint64_t>(seed) * 48271u)
                 .crash_random(static_cast<std::uint64_t>(seed) * 16807u,
                               crash_rate, 10)
                 .build();
    api::reg r = h.add_reg();
    api::cas c = h.add_cas();
    api::queue q = h.add_queue(64);
    h.script(0, {r.write(1), c.compare_and_set(0, 1), q.enq(7), r.read()});
    h.script(1, {q.enq(9), c.compare_and_set(1, 2), q.deq(), r.write(5)});
    h.script(2, {r.read(), q.deq(), c.read(), q.enq(3)});
    auto rep = h.run();
    out.crashes += rep.crashes;
    for (const auto& e : h.events()) {
      if (e.kind == hist::event_kind::response) ++out.completed_ops;
      if (e.kind == hist::event_kind::recover_result) {
        if (e.verdict == hist::recovery_verdict::linearized) {
          ++out.verdict_linearized;
        } else {
          ++out.verdict_fail;
        }
      }
    }
    auto cr = h.check();
    ++out.runs_checked;
    if (cr.ok) ++out.runs_ok;
  }
  return out;
}

}  // namespace

int main() {
  using bench::fmt;
  using bench::row;
  using bench::rule;

  std::printf(
      "E8 — Recovery behaviour vs crash rate (3 procs x 4 mixed ops, retry\n"
      "policy, 40 seeds per rate; every run checked for durable\n"
      "linearizability + detectability)\n\n");
  row({"crash rate", "crashes", "resp ops", "rec:linear", "rec:fail",
       "verified"});
  rule(6);
  for (double rate : {0.0, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    outcome o = sweep(rate, 40);
    row({fmt(rate, 3), bench::fmt_u(o.crashes), bench::fmt_u(o.completed_ops),
         bench::fmt_u(o.verdict_linearized), bench::fmt_u(o.verdict_fail),
         std::to_string(o.runs_ok) + "/" + std::to_string(o.runs_checked)});
  }
  std::printf(
      "\nShape check: every run verifies at every crash rate; as the rate\n"
      "grows, recovery verdicts (both kinds) grow while directly-completed\n"
      "responses shrink — yet no operation is ever lost or duplicated.\n");
  return 0;
}
