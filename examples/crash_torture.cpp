// crash_torture — a verification storm: many seeds, random schedules, random
// crash placements, mixed objects, every run checked for durable
// linearizability + detectability.
//
// This is the example to copy when qualifying a new detectable object: add
// its kind to the registry, instantiate it by name, and let the storm hunt
// for schedule/crash interleavings that break it. (Try a "stripped_*" kind
// to watch the checker catch Theorem-2 violations.)
//
// Build & run:  ./build/crash_torture [seeds]
#include <cstdio>
#include <cstdlib>

#include "api/api.hpp"

int main(int argc, char** argv) {
  using namespace detect;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 200;
  constexpr int k_procs = 3;

  int ok = 0;
  int failed = 0;
  std::uint64_t crashes_total = 0;
  std::uint64_t verdicts = 0;

  for (int seed = 1; seed <= seeds; ++seed) {
    auto h = api::harness::builder()
                 .procs(k_procs)
                 .fail_policy(seed % 2 == 0 ? core::runtime::fail_policy::retry
                                            : core::runtime::fail_policy::skip)
                 .seed(static_cast<std::uint64_t>(seed) * 6364136223846793005ull)
                 .crash_random(
                     static_cast<std::uint64_t>(seed) * 1442695040888963407ull,
                     0.02, 4)
                 .build();

    api::reg r = h.add_reg();
    api::cas c = h.add_cas();
    api::counter ctr = h.add_counter();
    api::max_reg m = h.add_max_reg();

    h.script(0, {r.write(seed), ctr.add(1), c.compare_and_set(0, 1),
                 m.write_max(seed % 17)});
    h.script(1, {c.compare_and_set(0, 2), r.read(), m.read(), ctr.add(2)});
    h.script(2, {ctr.read(), m.write_max(seed % 11), r.write(seed + 1),
                 c.read()});

    auto report = h.run();
    crashes_total += report.crashes;
    for (const auto& e : h.events()) {
      if (e.kind == hist::event_kind::recover_result) ++verdicts;
    }

    auto check = h.check();
    if (check.ok) {
      ++ok;
    } else {
      ++failed;
      std::printf("seed %d FAILED:\n%s\n", seed, check.message.c_str());
    }
  }

  std::printf(
      "crash_torture: %d runs, %d verified, %d failed, %llu crashes, %llu "
      "recovery verdicts\n",
      seeds, ok, failed, static_cast<unsigned long long>(crashes_total),
      static_cast<unsigned long long>(verdicts));
  return failed == 0 ? 0 : 1;
}
