// detect::serve metrics — the observable surface of the serving front-end.
//
// Everything the server measures lands in one copyable `stats` snapshot:
// admission outcomes, batch shapes, per-shard queue depth and served load,
// the rebalancer's move log, submit-to-complete latency quantiles, and the
// persistent-cell footprint of the executor's NVM domains. `bench_serve`
// serializes snapshots into BENCH_serve.json via `stats_json()` so the CI
// job summary and the JSON artifact can never disagree on field names.
//
// Latencies are recorded in the server's tick unit — batch rounds in
// deterministic mode (a replayable logical clock), microseconds in threaded
// mode — into a log-bucketed histogram: 8 linear sub-buckets per power of
// two, so quantiles carry at most ~12% relative error at fixed memory, the
// usual HDR-histogram trade.
#pragma once

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace detect::serve {

/// Fixed-memory log-bucketed histogram of latency ticks.
class latency_histogram {
 public:
  void record(std::uint64_t ticks) noexcept {
    ++buckets_[index_of(ticks)];
    ++count_;
  }

  std::uint64_t count() const noexcept { return count_; }

  /// Smallest bucket lower bound with cumulative count ≥ q·count. 0 when
  /// empty. q outside [0,1] is clamped.
  std::uint64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double want = q * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (int i = 0; i < k_buckets; ++i) {
      seen += buckets_[i];
      if (static_cast<double>(seen) >= want && buckets_[i] != 0) {
        return lower_bound_of(i);
      }
    }
    return lower_bound_of(k_buckets - 1);
  }

 private:
  static constexpr int k_sub_bits = 3;
  static constexpr int k_sub = 1 << k_sub_bits;  // linear buckets per octave
  static constexpr int k_buckets = (64 - k_sub_bits + 1) * k_sub;

  static int index_of(std::uint64_t v) noexcept {
    if (v < k_sub) return static_cast<int>(v);
    const int msb = 63 - std::countl_zero(v);
    const int sub =
        static_cast<int>((v >> (msb - k_sub_bits)) & (k_sub - 1));
    return (msb - k_sub_bits + 1) * k_sub + sub;
  }

  static std::uint64_t lower_bound_of(int idx) noexcept {
    if (idx < k_sub) return static_cast<std::uint64_t>(idx);
    const int group = idx / k_sub;
    const int sub = idx % k_sub;
    const int msb = group + k_sub_bits - 1;
    return static_cast<std::uint64_t>(k_sub + sub) << (msb - k_sub_bits);
  }

  std::uint64_t buckets_[k_buckets] = {};
  std::uint64_t count_ = 0;
};

/// Per-shard slice of the snapshot.
struct shard_stats {
  std::uint64_t queue_depth = 0;      // pending ops right now
  std::uint64_t max_queue_depth = 0;  // deepest the queue ever got
  std::uint64_t served = 0;           // ops this shard executed
  std::uint64_t batches = 0;          // rounds with ≥1 op on this shard
  std::uint64_t rejected_queue = 0;   // submits bounced off the high-water
};

/// One rebalancer move, as logged when it happened.
struct move_record {
  std::uint64_t round = 0;
  std::uint32_t object = 0;
  int from = 0;
  int to = 0;
  /// The window load ratio (max/ideal) that triggered the cycle this move
  /// belongs to.
  double ratio_before = 0.0;
};

struct stats {
  std::uint64_t sessions_opened = 0;

  // Admission.
  std::uint64_t submitted = 0;  // every submit() call
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t inflight = 0;  // admitted, not yet completed
  std::uint64_t rejected_queue = 0;           // shard high-water mark
  std::uint64_t rejected_session_tokens = 0;  // per-session token bucket
  std::uint64_t rejected_global = 0;          // global inflight limit
  std::uint64_t rejected_shutdown = 0;        // submitted after shutdown()
  std::uint64_t rejected_invalid = 0;         // unknown object id

  // Batching.
  std::uint64_t rounds = 0;        // executor batch rounds run
  std::uint64_t batches = 0;       // per-shard non-empty batches
  std::uint64_t max_batch_ops = 0; // largest single per-shard batch
  double mean_batch_ops = 0.0;

  // Execution (summed over rounds / read from the last run_report).
  std::uint64_t steps = 0;
  std::uint64_t crashes = 0;
  std::uint64_t nvm_cells = 0;
  std::uint64_t nvm_bytes = 0;

  // Rebalancing.
  double load_ratio_window = 0.0;  // last evaluated window's max/ideal
  std::vector<move_record> moves;

  std::vector<shard_stats> shards;

  // Latency (submit → completion callback), in `latency_unit` ticks.
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::string latency_unit;  // "rounds" (deterministic) or "us" (threaded)

  std::uint64_t rejected_total() const noexcept {
    return rejected_queue + rejected_session_tokens + rejected_global +
           rejected_shutdown + rejected_invalid;
  }
};

/// The snapshot as one JSON object — the row format of BENCH_serve.json.
inline std::string stats_json(const stats& s) {
  std::ostringstream os;
  os << "{\"sessions\": " << s.sessions_opened
     << ", \"submitted\": " << s.submitted << ", \"admitted\": " << s.admitted
     << ", \"completed\": " << s.completed << ", \"inflight\": " << s.inflight
     << ", \"rejected\": " << s.rejected_total()
     << ", \"rejected_queue\": " << s.rejected_queue
     << ", \"rejected_session_tokens\": " << s.rejected_session_tokens
     << ", \"rejected_global\": " << s.rejected_global
     << ", \"rejected_shutdown\": " << s.rejected_shutdown
     << ", \"rejected_invalid\": " << s.rejected_invalid
     << ", \"rounds\": " << s.rounds << ", \"batches\": " << s.batches
     << ", \"mean_batch_ops\": " << s.mean_batch_ops
     << ", \"max_batch_ops\": " << s.max_batch_ops
     << ", \"steps\": " << s.steps << ", \"crashes\": " << s.crashes
     << ", \"nvm_cells\": " << s.nvm_cells
     << ", \"nvm_bytes\": " << s.nvm_bytes
     << ", \"load_ratio_window\": " << s.load_ratio_window
     << ", \"p50\": " << s.p50 << ", \"p99\": " << s.p99
     << ", \"latency_unit\": \"" << s.latency_unit << "\""
     << ", \"queue_depth\": [";
  for (std::size_t k = 0; k < s.shards.size(); ++k) {
    os << (k != 0 ? ", " : "") << s.shards[k].queue_depth;
  }
  os << "], \"max_queue_depth\": [";
  for (std::size_t k = 0; k < s.shards.size(); ++k) {
    os << (k != 0 ? ", " : "") << s.shards[k].max_queue_depth;
  }
  os << "], \"served\": [";
  for (std::size_t k = 0; k < s.shards.size(); ++k) {
    os << (k != 0 ? ", " : "") << s.shards[k].served;
  }
  os << "], \"moves\": [";
  for (std::size_t i = 0; i < s.moves.size(); ++i) {
    const move_record& m = s.moves[i];
    os << (i != 0 ? ", " : "") << "{\"round\": " << m.round
       << ", \"object\": " << m.object << ", \"from\": " << m.from
       << ", \"to\": " << m.to << ", \"ratio_before\": " << m.ratio_before
       << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace detect::serve
