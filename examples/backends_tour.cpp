// Backends tour: the same scripted workload on all three execution backends
// — the one-line policy change detect::api::executor is for.
//
//   single    one deterministic sim::world (today's harness semantics)
//   sharded   K independent worlds; objects route by id, per-shard logs
//             merge into one history, check() runs per object
//   threads   free-running real threads over emulated NVM, with post-hoc
//             per-object linearizability checking (lincheck-style)
//
// The workload below never mentions its backend: objects come from the same
// registry, scripts are the same op_desc vectors, and check() is the same
// per-object durable-linearizability verdict everywhere.
//
// Build & run:  ./build/backends_tour
#include <cstdio>

#include "api/api.hpp"

namespace {

using namespace detect;

// Four processes hammer three counters and a queue; returns check().ok.
bool run_on(api::exec_backend backend, int shards, bool with_crashes) {
  auto b = api::executor::builder()
               .backend(backend)
               .shards(shards)
               .procs(4)
               .seed(7);
  // Crash plans only make sense under the simulator; the threads backend
  // runs crash-free on real cores.
  if (with_crashes) {
    b.fail_policy(core::runtime::fail_policy::retry).crash_at({25, 60});
  }
  auto ex = b.build();

  api::counter c0 = ex->add_counter();
  api::counter c1 = ex->add_counter();
  api::counter c2 = ex->add_counter();
  api::queue q = ex->add_queue();

  for (int p = 0; p < 4; ++p) {
    ex->script(p, {c0.add(1), q.enq(p), c1.add(1), q.deq(), c2.add(1),
                   c0.add(1)});
  }

  auto report = ex->run();
  auto check = ex->check();
  std::printf("%-8s shards=%d  %5llu steps  %llu crashes  verified: %s\n",
              api::backend_name(backend), ex->shards(),
              static_cast<unsigned long long>(report.steps),
              static_cast<unsigned long long>(report.crashes),
              check.ok ? "YES" : "NO");
  if (!check.ok) std::printf("%s\n", check.message.c_str());
  return check.ok;
}

}  // namespace

int main() {
  bool ok = true;
  ok &= run_on(api::exec_backend::single, 1, /*with_crashes=*/true);
  ok &= run_on(api::exec_backend::sharded, 4, /*with_crashes=*/true);
  ok &= run_on(api::exec_backend::threads, 1, /*with_crashes=*/false);
  return ok ? 0 : 1;
}
