// The detect::api façade itself: registry qualification of every object kind,
// harness builder configuration, typed-handle descriptor construction, and
// the fail_policy::retry exactly-once guarantee under mid-operation crashes.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/detectable_cas.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

// ---- typed handles ----------------------------------------------------------

TEST(handles, construct_correct_descriptors) {
  auto h = api::harness::builder().procs(2).build();
  api::reg r = h.add_reg();
  api::cas c = h.add_cas();
  api::queue q = h.add_queue();

  hist::op_desc w = r.write(42);
  EXPECT_EQ(w.object, r.id());
  EXPECT_EQ(w.code, hist::opcode::reg_write);
  EXPECT_EQ(w.a, 42);

  hist::op_desc cs = c.compare_and_set(1, 2);
  EXPECT_EQ(cs.object, c.id());
  EXPECT_EQ(cs.code, hist::opcode::cas);
  EXPECT_EQ(cs.a, 1);
  EXPECT_EQ(cs.b, 2);

  hist::op_desc e = q.enq(7);
  EXPECT_EQ(e.object, q.id());
  EXPECT_EQ(e.code, hist::opcode::enq);

  // Fresh ids per object, in registration order.
  EXPECT_EQ(r.id(), 0u);
  EXPECT_EQ(c.id(), 1u);
  EXPECT_EQ(q.id(), 2u);
}

TEST(handles, empty_handle_throws) {
  api::object_handle empty;
  EXPECT_THROW(empty.object(), std::logic_error);
}

// ---- object_registry --------------------------------------------------------

TEST(object_registry, knows_all_builtin_kinds) {
  auto& reg = api::object_registry::global();
  for (const char* kind :
       {"reg", "cas", "counter", "swap", "tas", "queue", "stack", "max_reg",
        "lock", "nrl_reg", "attiya_reg", "bendavid_cas", "plain_reg",
        "plain_cas", "plain_counter", "stripped_reg", "stripped_cas",
        "stripped_counter", "stripped_swap", "stripped_tas", "stripped_queue",
        "stripped_stack"}) {
    EXPECT_TRUE(reg.contains(kind)) << kind;
  }
}

TEST(object_registry, unknown_kind_throws) {
  auto h = api::harness::builder().procs(1).build();
  EXPECT_THROW(h.add("no_such_object"), std::invalid_argument);
}

TEST(object_registry, duplicate_kind_rejected) {
  auto& reg = api::object_registry::global();
  api::kind_info dup = reg.at("reg");
  EXPECT_THROW(api::object_registry::global().add(std::move(dup)),
               std::invalid_argument);
}

TEST(object_registry, stripped_kinds_disable_aux_resets) {
  auto h = api::harness::builder().procs(2).build();
  EXPECT_FALSE(h.add("stripped_cas").object().wants_aux_reset());
  EXPECT_TRUE(h.add("cas").object().wants_aux_reset());
  EXPECT_FALSE(h.add("max_reg").object().wants_aux_reset())
      << "Algorithm 3 needs no auxiliary state by construction";
}

// Every kind in the registry must be instantiable by name and pass a
// crash-free smoke scenario checked against its own spec — the qualification
// gate for core algorithms, baselines, and stripped variants alike.
class registry_qualification : public ::testing::TestWithParam<std::string> {};

TEST_P(registry_qualification, instantiates_and_passes_smoke_scenario) {
  const std::string kind = GetParam();
  auto h = api::harness::builder().procs(2).seed(7).build();
  api::object_handle obj = h.add(kind);
  EXPECT_EQ(obj.kind(), kind);
  for (int pid = 0; pid < 2; ++pid) {
    h.script(pid, api::smoke_script(obj.family(), obj.id(), pid));
  }
  auto report = h.run();
  EXPECT_FALSE(report.hit_step_limit);
  auto check = h.check();
  EXPECT_TRUE(check.ok) << kind << ":\n" << check.message << h.log_text();
}

INSTANTIATE_TEST_SUITE_P(
    all_kinds, registry_qualification,
    ::testing::ValuesIn(api::object_registry::global().kinds()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// Detectable kinds must additionally survive a crash battery through the
// runtime's recovery protocol.
class registry_crash_qualification : public ::testing::TestWithParam<std::string> {};

TEST_P(registry_crash_qualification, crash_fuzz_by_name) {
  const std::string kind = GetParam();
  scenario cfg;
  cfg.nprocs = 2;
  cfg.setup = [kind](api::harness& h) {
    api::object_handle obj = h.add(kind);
    for (int pid = 0; pid < 2; ++pid) {
      h.script(pid, api::smoke_script(obj.family(), obj.id(), pid));
    }
  };
  crash_fuzz(cfg, 40, 2, std::hash<std::string>{}(kind) % 100000);
}

INSTANTIATE_TEST_SUITE_P(detectable_kinds, registry_crash_qualification,
                         ::testing::ValuesIn([] {
                           std::vector<std::string> kinds;
                           auto& reg = api::object_registry::global();
                           for (const std::string& k : reg.kinds()) {
                             if (reg.at(k).detectable) kinds.push_back(k);
                           }
                           return kinds;
                         }()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// ---- harness builder --------------------------------------------------------

TEST(harness_builder, wires_fail_policy_and_crash_plan) {
  auto h = api::harness::builder()
               .procs(2)
               .fail_policy(core::runtime::fail_policy::retry)
               .seed(2024)
               .crash_random(99, 0.02, 4)
               .build();
  api::reg r = h.add_reg();
  api::cas c = h.add_cas();
  h.script(0, {r.write(1), c.compare_and_set(0, 7), r.read()});
  h.script(1, {c.compare_and_set(0, 9), r.read()});
  auto report = h.run();
  EXPECT_FALSE(report.hit_step_limit);
  auto check = h.check();
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(harness_builder, shared_cache_mode_with_transform) {
  auto cfg = one_object<api::reg>("reg", 2, [](api::reg r) {
    return scripts{{0, {r.write(1), r.read()}}, {1, {r.write(2)}}};
  });
  cfg.shared_cache = true;
  crash_fuzz(cfg, 30, 2);
}

TEST(harness_builder, max_steps_is_honored) {
  auto h = api::harness::builder().procs(1).max_steps(3).build();
  api::reg r = h.add_reg();
  h.script(0, {r.write(1), r.write(2), r.write(3)});
  auto report = h.run();
  EXPECT_TRUE(report.hit_step_limit);
}

// ---- arena (free-running façade) --------------------------------------------

TEST(arena, serves_registry_objects_without_a_world) {
  api::arena a(2);
  api::counter c(a.add("plain_counter"));
  for (int i = 0; i < 5; ++i) {
    a.reset_aux(0);
    c.object().invoke(0, c.add(1));
  }
  a.reset_aux(0);
  EXPECT_EQ(c.object().invoke(0, c.read()), 5);
}

// ---- fail_policy::retry: exactly-once under mid-operation crashes -----------

// Crash a counter add at its commit point — once right BEFORE the capsule's
// CAS (recovery reports fail, the runtime re-attempts) and once right AFTER
// (recovery reports linearized, no re-attempt). In both branches the add
// must linearize exactly once: the follow-up read sees 1, never 0 or 2.
TEST(fail_policy_retry, mid_op_crash_linearizes_exactly_once) {
  for (bool crash_after_commit : {false, true}) {
    auto h = api::harness::builder()
                 .procs(1)
                 .fail_policy(core::runtime::fail_policy::retry)
                 .build();
    api::counter c = h.add_counter();
    h.script(0, {c.add(1), c.read()});
    h.runtime().start();
    // Step to the capsule's commit CAS (the only shared_cas with CP == 1).
    while (!(h.board().of(0).cp.peek() == 1 &&
             h.world().pending_access(0) == nvm::access::shared_cas)) {
      h.world().step(0);
    }
    if (crash_after_commit) h.world().step(0);
    h.world().crash();
    h.runtime().on_crash();  // logs the crash, resubmits, recovery decides
    h.drive_all();

    // The re-attempted (or already linearized) add closes exactly once —
    // either a normal response (the re-attempt) or a linearized recovery
    // verdict (the commit landed) — and the read observes 1.
    int add_closures = 0;
    hist::value_t read_value = hist::k_bottom;
    int fail_verdicts = 0;
    for (const auto& e : h.events()) {
      bool closes = e.kind == hist::event_kind::response ||
                    (e.kind == hist::event_kind::recover_result &&
                     e.verdict == hist::recovery_verdict::linearized);
      if (closes && e.desc.code == hist::opcode::ctr_add) ++add_closures;
      if (closes && e.desc.code == hist::opcode::ctr_read) read_value = e.value;
      if (e.kind == hist::event_kind::recover_result &&
          e.verdict == hist::recovery_verdict::fail) {
        ++fail_verdicts;
      }
    }
    EXPECT_EQ(read_value, 1)
        << "the interrupted add must take effect exactly once";
    EXPECT_EQ(add_closures, 1) << "the add must linearize exactly once";
    if (crash_after_commit) {
      EXPECT_EQ(fail_verdicts, 0)
          << "commit landed: recovery must not re-run the add";
    } else {
      EXPECT_EQ(fail_verdicts, 1)
          << "recovery must first report the interrupted attempt as fail";
    }
    auto check = h.check();
    EXPECT_TRUE(check.ok) << check.message << h.log_text();
  }
}

// The same invariant under a full crash-at-every-step sweep: whatever the
// crash placement, retry closes every op and the final read returns 1.
TEST(fail_policy_retry, crash_sweep_read_always_sees_one) {
  auto cfg = one_object<api::counter>(
      "counter", 1,
      [](api::counter c) { return scripts{{0, {c.add(1), c.read()}}}; },
      core::runtime::fail_policy::retry);
  run_outcome base = run_scenario(cfg, 1);
  ASSERT_TRUE(base.check.ok) << base.check.message;
  for (std::uint64_t k = 0; k < base.report.steps; ++k) {
    run_outcome out = run_scenario(cfg, 1, {k});
    ASSERT_TRUE(out.check.ok) << "crash at " << k << "\n" << out.check.message;
    // The read (client_seq 2) must close with value 1 in every run.
    EXPECT_NE(out.log_text.find("ctr_read()"), std::string::npos);
    EXPECT_EQ(out.log_text.find("ctr_read() -> 0"), std::string::npos)
        << "crash at " << k << ": read observed a lost add\n"
        << out.log_text;
  }
}

}  // namespace
