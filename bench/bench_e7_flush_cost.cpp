// E7 — Persistency-instruction cost in the shared-cache model (§6).
//
// Paper claim: the algorithms are stated in the private-cache model; the
// syntactic transformation of Izraelevitz et al. ports them to the realistic
// shared-cache model by adding explicit flush/fence instructions, preserving
// correctness and space complexity. The added cost is persistency
// instructions — counted here per operation for every algorithm.
#include <functional>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "bench_util.hpp"

namespace {

using namespace detect;

struct cost {
  double flushes_per_op = 0;
  double fences_per_op = 0;
  double shared_per_op = 0;
};

using script_fn =
    std::function<std::vector<hist::op_desc>(const api::object_handle&)>;

cost measure(const std::string& kind, int nprocs, const script_fn& make_script,
             bool shared_cache) {
  auto b = api::harness::builder();
  b.procs(nprocs).max_steps(10'000'000);
  if (shared_cache) b.shared_cache(/*auto_persist=*/true);
  api::harness h = b.build();
  api::object_handle obj = h.add(kind);
  h.persist_all();
  h.domain().counters().reset();
  std::vector<hist::op_desc> per_proc_script = make_script(obj);
  for (int p = 0; p < nprocs; ++p) h.script(p, per_proc_script);
  h.run();
  auto s = h.domain().counters().snapshot();
  double ops = static_cast<double>(nprocs * per_proc_script.size());
  return {static_cast<double>(s.flushes) / ops,
          static_cast<double>(s.fences) / ops,
          static_cast<double>(s.shared_total()) / ops};
}

script_fn writes(int m) {
  return [m](const api::object_handle& o) {
    api::reg r(o);
    std::vector<hist::op_desc> v;
    for (int i = 0; i < m; ++i) v.push_back(r.write(i));
    return v;
  };
}
script_fn cases(int m) {
  return [m](const api::object_handle& o) {
    api::cas c(o);
    std::vector<hist::op_desc> v;
    for (int i = 0; i < m; ++i)
      v.push_back(c.compare_and_set(i % 3, (i + 1) % 3));
    return v;
  };
}
script_fn max_writes(int m) {
  return [m](const api::object_handle& o) {
    api::max_reg mr(o);
    std::vector<hist::op_desc> v;
    for (int i = 0; i < m; ++i) v.push_back(mr.write_max(i));
    return v;
  };
}

}  // namespace

int main() {
  using bench::fmt;
  using bench::row;
  using bench::rule;

  std::printf(
      "E7 — Persistency instructions per operation after the shared-cache\n"
      "transformation (N = 4 processes, 50 ops/process; private-cache issues\n"
      "none by construction)\n\n");
  row({"algorithm", "flush/op", "fence/op", "sharedacc/op"}, 18);
  rule(4, 18);

  auto report = [&](const char* name, cost c) {
    row({name, fmt(c.flushes_per_op, 1), fmt(c.fences_per_op, 1),
         fmt(c.shared_per_op, 1)},
        18);
  };

  report("alg1 write", measure("reg", 4, writes(50), true));
  report("attiya write", measure("attiya_reg", 4, writes(50), true));
  report("alg2 cas", measure("cas", 4, cases(50), true));
  report("bendavid cas", measure("bendavid_cas", 4, cases(50), true));
  report("alg3 wmax", measure("max_reg", 4, max_writes(50), true));

  std::printf("\nFor contrast, the same workloads in the private-cache model:\n");
  row({"algorithm", "flush/op", "fence/op", "sharedacc/op"}, 18);
  rule(4, 18);
  report("alg1 write (pc)", measure("reg", 4, writes(50), false));
  report("alg2 cas (pc)", measure("cas", 4, cases(50), false));

  std::printf(
      "\nShape check: in the shared-cache model every access carries one\n"
      "flush+fence (the transform), so flush/op tracks accesses/op; alg1's\n"
      "O(N) toggle loop dominates its writes, alg2 stays constant; the\n"
      "private-cache rows issue zero persistency instructions.\n");
  return 0;
}
