#include "sim/world.hpp"

#include <algorithm>
#include <stdexcept>

namespace detect::sim {

namespace {

void insert_sorted(std::vector<int>& v, int pid) {
  v.insert(std::lower_bound(v.begin(), v.end(), pid), pid);
}

void erase_sorted(std::vector<int>& v, int pid) {
  auto it = std::lower_bound(v.begin(), v.end(), pid);
  if (it != v.end() && *it == pid) v.erase(it);
}

}  // namespace

world::world(int nprocs, world_config cfg)
    : cfg_(cfg), engine_(cfg.engine.value_or(default_engine())) {
  if (nprocs <= 0) throw std::invalid_argument("world: nprocs must be >= 1");
  procs_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) procs_.push_back(make_strand(engine_));
  ready_.reserve(static_cast<std::size_t>(nprocs));
}

world::~world() = default;

void world::settle() {
  // Done strands are never in ready_; absorbing them only flips them idle
  // and surfaces any task exception (first one wins, as before).
  for (auto& s : procs_) {
    if (s->st() != strand::status::done) continue;
    if (std::exception_ptr e = s->reset_done()) std::rethrow_exception(e);
  }
}

void world::submit(int pid, std::function<void()> task) {
  settle();
  strand& s = *procs_.at(static_cast<std::size_t>(pid));
  if (s.st() != strand::status::idle) {
    throw std::logic_error("submit: process p" + std::to_string(pid) +
                           " already has a task");
  }
  s.start(std::move(task));
  if (s.st() == strand::status::at_yield) insert_sorted(ready_, pid);
  // A task that finished (or threw) before its first access stays `done`
  // until the next settle point — the same place the thread engine's
  // quiesce used to surface it.
}

std::vector<int> world::runnable() {
  settle();
  return ready_;
}

bool world::busy() {
  settle();
  return !ready_.empty();
}

void world::step_ready(int pid) {
  ++step_no_;
  strand& s = *procs_[static_cast<std::size_t>(pid)];
  s.step();
  if (s.st() == strand::status::done) {
    erase_sorted(ready_, pid);
    if (std::exception_ptr e = s.reset_done()) std::rethrow_exception(e);
  }
}

void world::step(int pid) {
  settle();
  if (pid < 0 || pid >= nprocs() ||
      procs_[static_cast<std::size_t>(pid)]->st() != strand::status::at_yield) {
    throw std::logic_error("step: process p" + std::to_string(pid) +
                           " is not runnable");
  }
  step_ready(pid);
}

nvm::access world::pending_access(int pid) {
  settle();
  strand& s = *procs_.at(static_cast<std::size_t>(pid));
  if (s.st() != strand::status::at_yield) {
    throw std::logic_error("pending_access: process is not at a yield");
  }
  return s.pending();
}

bool world::last_task_interrupted(int pid) {
  return procs_.at(static_cast<std::size_t>(pid))->interrupted();
}

void world::crash() {
  settle();
  // Unwind every parked task. Delivery is sequential in pid order — the
  // order is unobservable (each unwind only destroys that task's volatile
  // frames), and determinism beats the old concurrent wakeup.
  for (int pid : ready_) procs_[static_cast<std::size_t>(pid)]->deliver_crash();
  ready_.clear();
  settle();
  // All volatile frames are gone; now apply the memory model's crash rule,
  // then advance the system epoch durably (the hook is null on the driving
  // thread, so these are direct accesses).
  std::uint64_t e = epoch_.peek();
  domain_.crash_reset();
  if (domain_.last_crash_lost()) lost_persistence_ = true;
  epoch_.store(e + 1);
  epoch_.flush();
}

run_report world::run(scheduler& sched, crash_plan* crashes,
                      const std::function<void()>& on_crash_done) {
  run_report rep;
  for (;;) {
    settle();
    if (ready_.empty()) break;
    if (step_no_ >= cfg_.max_steps) {
      rep.hit_step_limit = true;
      rep.limit_note = "step limit " + std::to_string(cfg_.max_steps) +
                       " hit under scheduler " + sched.describe();
      break;
    }
    if (crashes != nullptr && crashes->should_crash(step_no_)) {
      crash();
      ++rep.crashes;
      if (on_crash_done) on_crash_done();
      continue;
    }
    int pid = sched.pick(ready_, step_no_);
    step_ready(pid);
  }
  rep.steps = step_no_;
  rep.lost_persistence = lost_persistence_;
  rep.nvm_cells = domain_.cells_attached();
  rep.nvm_bytes = domain_.bytes_attached();
  return rep;
}

// ---------------------------------------------------------------------------
// policies

int round_robin_scheduler::pick(const std::vector<int>& runnable,
                                std::uint64_t) {
  int pid = runnable[next_ % runnable.size()];
  ++next_;
  return pid;
}

int random_scheduler::pick(const std::vector<int>& runnable, std::uint64_t) {
  return runnable[next_rand(state_) % runnable.size()];
}

int scripted_scheduler::pick(const std::vector<int>& runnable, std::uint64_t) {
  if (pos_ < script_.size()) {
    int want = script_[pos_++];
    if (std::binary_search(runnable.begin(), runnable.end(), want)) {
      return want;
    }
  }
  return runnable.front();
}

bool crash_at_steps::should_crash(std::uint64_t step_no) {
  for (std::uint64_t& a : at_) {
    if (a == step_no) {
      a = static_cast<std::uint64_t>(-1);  // fire once
      return true;
    }
  }
  return false;
}

bool random_crashes::should_crash(std::uint64_t) {
  if (left_ == 0) return false;
  double u = static_cast<double>(next_rand(state_) >> 11) / 9007199254740992.0;
  if (u < rate_) {
    --left_;
    return true;
  }
  return false;
}

}  // namespace detect::sim
