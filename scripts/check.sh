#!/usr/bin/env bash
# Tier-1 verify (build + ctest) followed by an ASan/UBSan pass.
#
#   scripts/check.sh           # both passes
#   scripts/check.sh --fast    # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== tier-1: RelWithDebInfo build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "${1:-}" == "--fast" ]]; then
  exit 0
fi

echo
echo "== sanitize: ASan/UBSan build + ctest =="
cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=Sanitize >/dev/null
cmake --build build-sanitize -j "$jobs"
ctest --test-dir build-sanitize --output-on-failure -j "$jobs"
