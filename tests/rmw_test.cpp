// Detectable RMW family (counter / fetch-and-add / test-and-set) built from
// Algorithm 2's flip-vector capsule.
#include <gtest/gtest.h>

#include "core/rmw.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario_config counter_scenario(int nprocs,
                                 std::map<int, std::vector<hist::op_desc>> scripts,
                                 core::runtime::fail_policy policy =
                                     core::runtime::fail_policy::skip) {
  scenario_config cfg;
  cfg.nprocs = nprocs;
  cfg.scripts = std::move(scripts);
  cfg.policy = policy;
  cfg.make_objects = [nprocs](sim_fixture& f,
                              std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(std::make_unique<core::detectable_counter>(nprocs, f.board,
                                                              0, f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] {
    return std::unique_ptr<hist::spec>(new hist::counter_spec(0));
  };
  return cfg;
}

scenario_config tas_scenario(int nprocs,
                             std::map<int, std::vector<hist::op_desc>> scripts) {
  scenario_config cfg;
  cfg.nprocs = nprocs;
  cfg.scripts = std::move(scripts);
  cfg.make_objects = [nprocs](sim_fixture& f,
                              std::vector<std::unique_ptr<core::detectable_object>>& objs) {
    objs.push_back(
        std::make_unique<core::detectable_tas>(nprocs, f.board, f.w.domain()));
    f.rt.register_object(0, *objs.back());
  };
  cfg.make_spec = [] { return std::unique_ptr<hist::spec>(new hist::tas_spec()); };
  return cfg;
}

TEST(detectable_counter, sequential_fetch_and_add) {
  auto cfg = counter_scenario(
      1, {{0, {op_add(1), op_add(2), op_ctr_read(), op_add(-1), op_ctr_read()}}});
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_counter, concurrent_increments_sum_correctly) {
  auto cfg = counter_scenario(3, {
                                     {0, {op_add(1), op_add(1)}},
                                     {1, {op_add(1), op_add(1)}},
                                     {2, {op_add(1), op_ctr_read()}},
                                 });
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(detectable_counter, crash_sweep) {
  auto cfg = counter_scenario(2, {
                                     {0, {op_add(1), op_add(1)}},
                                     {1, {op_add(1), op_ctr_read()}},
                                 });
  crash_sweep(cfg, 3);
}

TEST(detectable_counter, crash_sweep_retry) {
  auto cfg = counter_scenario(2,
                              {
                                  {0, {op_add(1), op_add(1)}},
                                  {1, {op_add(1), op_ctr_read()}},
                              },
                              core::runtime::fail_policy::retry);
  crash_sweep(cfg, 19);
}

TEST(detectable_counter, crash_fuzz) {
  auto cfg = counter_scenario(3, {
                                     {0, {op_add(1), op_add(2)}},
                                     {1, {op_add(3), op_ctr_read()}},
                                     {2, {op_ctr_read(), op_add(4)}},
                                 });
  crash_fuzz(cfg, 150, 2);
}

TEST(detectable_counter, faa_returns_old_value_exactly_once) {
  // With retry policy and crashes, each add must be applied exactly once —
  // the linearizability check against the counter spec enforces it via the
  // returned old values.
  auto cfg = counter_scenario(2,
                              {
                                  {0, {op_add(1), op_add(1), op_add(1)}},
                                  {1, {op_add(1), op_add(1), op_add(1)}},
                              },
                              core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 100, 2);
}

TEST(detectable_tas, sequential_set_reset) {
  auto cfg = tas_scenario(
      1, {{0, {op_tas_set(), op_tas_set(), op_tas_reset(), op_tas_set()}}});
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_tas, one_winner_among_contenders) {
  auto cfg = tas_scenario(3, {
                                 {0, {op_tas_set()}},
                                 {1, {op_tas_set()}},
                                 {2, {op_tas_set()}},
                             });
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(detectable_tas, crash_sweep_set_reset_cycle) {
  auto cfg = tas_scenario(2, {
                                 {0, {op_tas_set(), op_tas_reset()}},
                                 {1, {op_tas_set()}},
                             });
  crash_sweep(cfg, 29);
}

TEST(detectable_tas, crash_fuzz) {
  auto cfg = tas_scenario(3, {
                                 {0, {op_tas_set(), op_tas_reset()}},
                                 {1, {op_tas_set(), op_tas_set()}},
                                 {2, {op_tas_reset(), op_tas_set()}},
                             });
  crash_fuzz(cfg, 150, 2);
}

class counter_property
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(counter_property, exactly_once_under_fuzz) {
  auto [seed, crashes] = GetParam();
  auto cfg = counter_scenario(2,
                              {
                                  {0, {op_add(1), op_add(1)}},
                                  {1, {op_add(1), op_ctr_read()}},
                              },
                              core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 10, crashes, static_cast<std::uint64_t>(seed) * 49979687);
}

INSTANTIATE_TEST_SUITE_P(sweep, counter_property,
                         ::testing::Combine(::testing::Range(1, 7),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
