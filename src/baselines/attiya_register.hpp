// Unbounded-space detectable read/write register in the style of Attiya,
// Ben-Baruch & Hendler [3] — the baseline Algorithm 1 improves on.
//
// Every write carries a globally unique identifier ⟨pid, seq⟩ with a
// per-process unbounded sequence number; uniqueness kills ABA outright, which
// is exactly why the paper calls the approach unbounded-space. Detectability
// of an overwritten write uses a helping record: before replacing the value
// tagged ⟨q, s⟩, the overwriter raises written[q] to s (monotone CAS-max).
// Since written[q] is raised only after ⟨q, s⟩ was *observed in R*, a raised
// record proves q's write was linearized; conversely every overwrite first
// raises the record, so a linearized-then-replaced write is always covered.
//
// Simplification vs [3] (documented in DESIGN.md): [3] builds from read/write
// primitives with a helping matrix; we compress the helping protocol with a
// CAS on R. The space behaviour — identifiers grow without bound with the
// operation count, measured by `ids_minted()` — is preserved, which is what
// experiment E1 contrasts with Algorithm 1's flat footprint.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/object.hpp"
#include "nvm/pcell.hpp"
#include "nvm/pvar.hpp"

namespace detect::base {

using core::ann_fields;
using core::announcement_board;
using core::recovery_result;
using hist::value_t;

/// ⟨value, tag⟩ where tag = ⟨pid+1, seq⟩ (tag 0 = the initial value).
struct tagged_word {
  value_t val = 0;
  std::uint64_t tag = 0;

  friend bool operator==(const tagged_word&, const tagged_word&) = default;
};
static_assert(sizeof(tagged_word) == 16);

inline std::uint64_t make_tag(int pid, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(pid + 1) << 48) | seq;
}
inline int tag_pid(std::uint64_t tag) {
  return static_cast<int>(tag >> 48) - 1;
}
inline std::uint64_t tag_seq(std::uint64_t tag) {
  return tag & ((std::uint64_t{1} << 48) - 1);
}

class attiya_register final : public core::detectable_object {
 public:
  attiya_register(int nprocs, announcement_board& board, value_t init,
                  nvm::pmem_domain& dom)
      : board_(&board), r_(tagged_word{init, 0}, dom) {
    for (int p = 0; p < nprocs; ++p) {
      written_.push_back(std::make_unique<nvm::pcell<std::uint64_t>>(0, dom));
      seq_.push_back(std::make_unique<nvm::pvar<std::uint64_t>>(0, dom));
      rd_.push_back(std::make_unique<nvm::pvar<std::uint64_t>>(0, dom));
    }
  }

  value_t invoke(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::reg_write:
        return write(pid, op.a);
      case hist::opcode::reg_read:
        return read(pid);
      default:
        throw std::invalid_argument("attiya_register: bad opcode");
    }
  }

  recovery_result recover(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::reg_write:
        return write_recover(pid);
      case hist::opcode::reg_read:
        return read_recover(pid);
      default:
        throw std::invalid_argument("attiya_register: bad opcode");
    }
  }

  /// Total distinct write identifiers minted (E1's unbounded-space metric).
  std::uint64_t ids_minted() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : seq_) total += s->peek();
    return total;
  }

 private:
  void record_overwrite(std::uint64_t victim_tag) {
    if (victim_tag == 0) return;  // initial value, nobody to notify
    int q = tag_pid(victim_tag);
    std::uint64_t s = tag_seq(victim_tag);
    nvm::pcell<std::uint64_t>& cell = *written_[static_cast<std::size_t>(q)];
    std::uint64_t cur = cell.load();
    while (cur < s) {
      if (cell.compare_exchange(cur, s)) break;  // CAS-max, never regresses
    }
  }

  value_t write(int p, value_t val) {
    ann_fields& ann = board_->of(p);
    std::uint64_t s = seq_[p]->load() + 1;
    seq_[p]->store(s);
    rd_[p]->store(s);
    ann.cp.store(1);
    for (;;) {
      tagged_word cur = r_.load();
      record_overwrite(cur.tag);  // truthful: cur.tag was observed in R
      if (r_.compare_exchange(cur, tagged_word{val, make_tag(p, s)})) break;
    }
    ann.cp.store(2);
    ann.resp.store(hist::k_ack);
    return hist::k_ack;
  }

  recovery_result write_recover(int p) {
    ann_fields& ann = board_->of(p);
    if (ann.resp.load() != hist::k_bottom) {
      return recovery_result::linearized(hist::k_ack);
    }
    if (ann.cp.load() == 0) return recovery_result::failed();
    std::uint64_t s = rd_[p]->load();
    tagged_word cur = r_.load();
    if (cur.tag == make_tag(p, s) || written_[p]->load() >= s) {
      ann.resp.store(hist::k_ack);
      return recovery_result::linearized(hist::k_ack);
    }
    return recovery_result::failed();
  }

  value_t read(int p) {
    ann_fields& ann = board_->of(p);
    value_t v = r_.load().val;
    ann.resp.store(v);
    return v;
  }

  recovery_result read_recover(int p) {
    ann_fields& ann = board_->of(p);
    value_t v = ann.resp.load();
    if (v != hist::k_bottom) return recovery_result::linearized(v);
    return recovery_result::linearized(read(p));
  }

  announcement_board* board_;
  nvm::pcell<tagged_word> r_;
  std::vector<std::unique_ptr<nvm::pcell<std::uint64_t>>> written_;
  std::vector<std::unique_ptr<nvm::pvar<std::uint64_t>>> seq_;
  std::vector<std::unique_ptr<nvm::pvar<std::uint64_t>>> rd_;
};

}  // namespace detect::base
