// The three execution backends behind detect::api::executor.
#include "api/executor.hpp"

#include "util/task_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace detect::api {

const char* backend_name(exec_backend b) noexcept {
  switch (b) {
    case exec_backend::single: return "single";
    case exec_backend::sharded: return "sharded";
    case exec_backend::threads: return "threads";
  }
  return "?";
}

exec_backend backend_from_name(const std::string& name) {
  if (name == "single") return exec_backend::single;
  if (name == "sharded") return exec_backend::sharded;
  if (name == "threads") return exec_backend::threads;
  throw std::invalid_argument("backend_from_name: unknown backend '" + name +
                              "'");
}

std::string executor::log_text() const {
  std::ostringstream os;
  for (const hist::event& e : events()) os << e.to_string() << '\n';
  return os.str();
}

std::unique_ptr<executor> executor::builder::build() const {
  return make_executor(pol_);
}

namespace {

/// Uniform script() contract across backends: a bad pid throws here, at
/// scripting time, not as an opaque error deep inside run().
void check_pid(int pid, int nprocs) {
  if (pid < 0 || pid >= nprocs) {
    throw std::invalid_argument("executor: script pid " + std::to_string(pid) +
                                " out of range for " + std::to_string(nprocs) +
                                " procs");
  }
}

/// Uniform migrate()/rebalance() error off the sharded backend.
[[noreturn]] void no_migration(exec_backend b) {
  throw std::invalid_argument(
      std::string("executor: migration needs exec_backend::sharded; the ") +
      backend_name(b) + " backend runs exactly one world");
}

/// One harness configured per `p` — the building block of the single backend
/// (one of them) and the sharded backend (one per shard).
harness build_harness(const exec_policy& p) {
  harness::builder b;
  b.procs(p.nprocs).world(p.wcfg).fail_policy(p.fail);
  if (p.sched_seed) b.seed(*p.sched_seed);
  b.schedule(p.sched).persist(p.persist);
  if (!p.crash_steps.empty()) b.crash_at(p.crash_steps);
  if (p.crash_random) {
    auto [seed, rate, max] = *p.crash_random;
    b.crash_random(seed, rate, max);
  }
  if (p.shared_cache) b.shared_cache(p.auto_persist);
  return b.build();
}

// ---------------------------------------------------------------------------
// single — today's one-world harness, verbatim.

class single_executor final : public executor {
 public:
  explicit single_executor(const exec_policy& p)
      : pol_(p), h_(build_harness(p)) {}

  exec_backend backend() const noexcept override {
    return exec_backend::single;
  }
  int nprocs() const noexcept override { return pol_.nprocs; }
  int shards() const noexcept override { return 1; }
  int shard_of(std::uint32_t) const noexcept override { return 0; }
  const placement_policy& placement() const noexcept override {
    return pol_.placement;
  }
  int pool_workers() const noexcept override { return 0; }
  placement_policy current_assignment() const override {
    return pinned_placement({});
  }

  object_handle add(const std::string& kind,
                    const object_params& params) override {
    return h_.add(kind, params);
  }
  object_handle add_as(std::uint32_t id, const std::string& kind,
                       const object_params& params) override {
    return h_.add_as(id, kind, params);
  }
  void script(int pid, std::vector<hist::op_desc> ops) override {
    check_pid(pid, pol_.nprocs);
    // Cumulative program per pid: the runtime's durable program counter
    // (done_seq) resumes after the already-executed prefix, so a second
    // script()+run() round executes exactly the newly appended ops.
    std::vector<hist::op_desc>& prog = programs_[pid];
    prog.insert(prog.end(), ops.begin(), ops.end());
    h_.script(pid, prog);
  }
  sim::run_report run() override { return h_.run(); }

  void reseed_crashes(std::uint64_t seed) override { h_.reseed_crashes(seed); }

  void migrate(std::uint32_t, int) override {
    no_migration(exec_backend::single);
  }
  int rebalance(const placement_policy&) override {
    no_migration(exec_backend::single);
  }

  std::vector<hist::event> events() const override { return h_.events(); }
  hist::check_result check(const hist::check_options& opt) const override {
    return h_.check_per_object(opt);
  }

 private:
  exec_policy pol_;
  harness h_;
  std::map<int, std::vector<hist::op_desc>> programs_;
};

// ---------------------------------------------------------------------------
// sharded — K one-world harnesses with placement-policy routing and live
// object migration between runs.

/// Worker count for the sharded backend's driver pool (a util::task_pool
/// instance owned per executor, so a fuzz campaign's thousands of run()
/// calls reuse the same OS threads): an explicit request
/// (builder().pool_threads(n) > 0) wins, then the DETECT_POOL_THREADS env
/// override, then auto = hardware cores. The result is capped at `shards`
/// (extra workers would idle) and collapses to 0 (inline mode) when it is
/// not at least 2 — one worker would serialize the batch anyway, through a
/// slower path than the submitter's own loop.
int shard_pool_workers(int shards, int requested) {
  int n = requested;
  if (n <= 0) {
    if (const char* env = std::getenv("DETECT_POOL_THREADS")) {
      n = std::atoi(env);
    }
  }
  if (n <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;  // unknown → assume a lone core
    n = static_cast<int>(hw);
  }
  n = std::min(n, shards);
  return n >= 2 ? n : 0;
}

class sharded_executor final : public executor {
 public:
  explicit sharded_executor(const exec_policy& p)
      : pol_(p), placement_(p.placement),
        pool_(shard_pool_workers(p.shards, p.pool_threads)) {
    shards_.reserve(static_cast<std::size_t>(p.shards));
    for (int k = 0; k < p.shards; ++k) {
      shards_.push_back(std::make_unique<harness>(build_harness(p)));
    }
    installed_.resize(shards_.size());
  }

  exec_backend backend() const noexcept override {
    return exec_backend::sharded;
  }
  int nprocs() const noexcept override { return pol_.nprocs; }
  int shards() const noexcept override {
    return static_cast<int>(shards_.size());
  }
  int shard_of(std::uint32_t object_id) const noexcept override {
    auto it = placed_.find(object_id);
    if (it != placed_.end()) return it->second.shard;
    return placement_.shard_of(object_id, placed_.size(),
                               static_cast<int>(shards_.size()));
  }
  const placement_policy& placement() const noexcept override {
    return placement_;
  }
  int pool_workers() const noexcept override { return pool_.workers(); }
  placement_policy current_assignment() const override {
    std::map<std::uint32_t, int> pins;
    for (const auto& [id, rec] : placed_) pins.emplace(id, rec.shard);
    return pinned_placement(std::move(pins));
  }

  object_handle add(const std::string& kind,
                    const object_params& params) override {
    return add_as(next_id_, kind, params);
  }

  object_handle add_as(std::uint32_t id, const std::string& kind,
                       const object_params& params) override {
    // The executor-level duplicate check: under non-modulo placement the
    // same id could otherwise land on two different shards (the declaration
    // index differs) and dodge the per-runtime check.
    if (placed_.count(id) != 0) {
      throw std::invalid_argument("executor: duplicate object id " +
                                  std::to_string(id));
    }
    const std::size_t decl_index = placed_.size();
    const int shard = placement_.shard_of(id, decl_index,
                                          static_cast<int>(shards_.size()));
    harness& home = *shards_[static_cast<std::size_t>(shard)];
    object_handle handle = home.add_as(id, kind, params);
    placed_.emplace(id, placed_object{kind, params, shard, decl_index,
                                      home.events().size(),
                                      {}});
    next_id_ = std::max(next_id_, id + 1);
    return handle;
  }

  void script(int pid, std::vector<hist::op_desc> ops) override {
    check_pid(pid, pol_.nprocs);
    std::vector<hist::op_desc>& pend = pending_[pid];
    pend.insert(pend.end(), ops.begin(), ops.end());
    scripted_pids_.insert(pid);
  }

  sim::run_report run() override {
    // Split the newly scheduled ops by the *current* placement, preserving
    // per-shard program order, and append them to each world's cumulative
    // program (the per-world durable program counters resume after the
    // already-executed prefix). A pid with no ops on a shard gets no client
    // task there. A pid whose whole program is empty still gets an (empty)
    // client task on shard 0, exactly as the single backend submits one —
    // without it the worlds' task sets differ and single-vs-sharded
    // equivalence breaks on shrinker-produced scenarios with emptied
    // scripts.
    for (auto& [pid, ops] : pending_) {
      for (const hist::op_desc& d : ops) {
        installed_[static_cast<std::size_t>(shard_of(d.object))][pid]
            .push_back(d);
      }
      ops.clear();
    }
    for (int pid : scripted_pids_) {
      bool scripted = false;
      for (std::size_t k = 0; k < shards_.size(); ++k) {
        auto it = installed_[k].find(pid);
        if (it != installed_[k].end() && !it->second.empty()) {
          shards_[k]->script(pid, it->second);
          scripted = true;
        }
      }
      if (!scripted) shards_[0]->script(pid, {});
    }

    // Worlds are self-contained (own processes, own NVM domain, thread-local
    // access hooks), so shards run as one batch on the persistent driver
    // pool; each shard stays internally deterministic, which is all replay
    // reproducibility needs. On a single-core host the pool is empty and the
    // batch runs inline, sequentially — same results, no thread traffic.
    std::vector<sim::run_report> reports(shards_.size());
    std::vector<std::exception_ptr> errors(shards_.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(shards_.size());
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      jobs.push_back([this, k, &reports, &errors] {
        try {
          reports[k] = shards_[k]->run();
        } catch (...) {
          errors[k] = std::current_exception();
        }
      });
    }
    pool_.run_batch(jobs);
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }

    // Remember where each shard's log stood when this run finished: runs are
    // real-time ordered (run N completes before N+1 starts), so the merged
    // log orders by (run, shard-local index, shard) — without the run
    // coordinate, a later run's events on a low shard would merge before an
    // earlier run's events on a high one.
    std::vector<std::size_t> mark(shards_.size());
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      mark[k] = shards_[k]->events().size();
    }
    round_marks_.push_back(std::move(mark));

    sim::run_report total;
    for (const sim::run_report& r : reports) {
      total.steps += r.steps;
      total.crashes += r.crashes;
      total.hit_step_limit = total.hit_step_limit || r.hit_step_limit;
      if (total.limit_note.empty()) total.limit_note = r.limit_note;
      total.lost_persistence = total.lost_persistence || r.lost_persistence;
      total.nvm_cells += r.nvm_cells;
      total.nvm_bytes += r.nvm_bytes;
      total.drain_steps += r.drain_steps;
      total.max_pending_stores =
          std::max(total.max_pending_stores, r.max_pending_stores);
    }
    return total;
  }

  void reseed_crashes(std::uint64_t seed) override {
    // Golden-ratio odd multiplier per shard: identical seeds would crash
    // every shard at the same draw positions.
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      shards_[k]->reseed_crashes(seed ^
                                 (0x9E3779B97F4A7C15ULL * (k + 1)));
    }
  }

  void migrate(std::uint32_t object_id, int shard) override {
    auto it = placed_.find(object_id);
    if (it == placed_.end()) {
      throw std::invalid_argument("executor: cannot migrate unknown object " +
                                  std::to_string(object_id));
    }
    if (shard < 0 || shard >= static_cast<int>(shards_.size())) {
      throw std::invalid_argument(
          "executor: cannot migrate object " + std::to_string(object_id) +
          " to shard " + std::to_string(shard) + " — this executor has " +
          std::to_string(shards_.size()) + " shard(s)");
    }
    placed_object& rec = it->second;
    if (shard == rec.shard) return;  // already home

    // Carry the object's source-shard history (its op events plus the
    // crashes it lived through) so check() still sees one contiguous
    // per-object history across the move.
    harness& src = *shards_[static_cast<std::size_t>(rec.shard)];
    append_object_slice(rec.prefix, src.events(), rec.arrival, object_id);

    // The transplant proper: NVM image out of the source world, fresh
    // same-layout object in the target world, image back in.
    nvm::pmem_image image = src.extract_object(object_id);
    harness& dst = *shards_[static_cast<std::size_t>(shard)];
    dst.adopt_object(object_id, rec.kind, rec.params, image);
    rec.shard = shard;
    rec.arrival = dst.events().size();
    rec.moved = true;
    any_migrated_ = true;
  }

  int rebalance(const placement_policy& policy) override {
    policy.validate(static_cast<int>(shards_.size()));
    // Plan first, move second: if any mover is blocked (an announced,
    // unrecovered op), nothing moves — a mid-loop throw must not leave the
    // fleet torn between two policies.
    std::vector<std::pair<std::uint32_t, int>> moves;
    for (auto& [id, rec] : placed_) {
      const int target = policy.shard_of(id, rec.decl_index,
                                         static_cast<int>(shards_.size()));
      if (target == rec.shard) continue;
      const std::string why =
          shards_[static_cast<std::size_t>(rec.shard)]->migration_blocker(id);
      if (!why.empty()) {
        throw std::invalid_argument("executor: rebalance blocked: " + why);
      }
      moves.emplace_back(id, target);
    }
    for (const auto& [id, target] : moves) migrate(id, target);
    placement_ = policy;
    return static_cast<int>(moves.size());
  }

  std::vector<hist::event> events() const override {
    std::vector<std::vector<hist::event>> logs;
    logs.reserve(shards_.size());
    for (const auto& sh : shards_) logs.push_back(sh->events());

    // Stable global order: run, then shard-local index, then shard id. Each
    // shard's log stays a subsequence of the merge, and a later run's
    // events never precede an earlier run's (runs are real-time ordered).
    std::vector<std::vector<std::size_t>> rounds = round_marks_;
    std::vector<std::size_t> tail(shards_.size());
    for (std::size_t k = 0; k < shards_.size(); ++k) tail[k] = logs[k].size();
    rounds.push_back(std::move(tail));  // anything past the last run mark

    std::vector<hist::event> out;
    std::vector<std::size_t> from(shards_.size(), 0);
    for (const std::vector<std::size_t>& upto : rounds) {
      for (std::size_t i = 0;; ++i) {
        bool any = false;
        for (std::size_t k = 0; k < logs.size(); ++k) {
          const std::size_t idx = from[k] + i;
          if (idx < std::min(upto[k], logs[k].size())) {
            out.push_back(logs[k][idx]);
            any = true;
          }
        }
        if (!any) break;
      }
      for (std::size_t k = 0; k < from.size(); ++k) {
        from[k] = std::max(from[k], std::min(upto[k], logs[k].size()));
      }
    }
    return out;
  }

  hist::check_result check(const hist::check_options& opt) const override {
    if (!any_migrated_) {
      // Crash events are per shard (each shard is its own failure domain),
      // so decompose shard by shard, each against its own objects' specs —
      // the per-object fan-out (opt.jobs) applies within each shard's call.
      hist::check_result res;
      res.ok = true;
      for (std::size_t k = 0; k < shards_.size(); ++k) {
        hist::check_result sub = shards_[k]->check_per_object(opt);
        res.nodes += sub.nodes;
        res.objects += sub.objects;
        res.synthesized_interval |= sub.synthesized_interval;
        if (!sub.ok) {
          res.ok = false;
          res.inconclusive = sub.inconclusive;
          res.failed_object = sub.failed_object;
          res.message =
              "shard " + std::to_string(k) + ": " + sub.message;
          return res;
        }
      }
      return res;
    }

    // Once an object has migrated, its history spans shards, so the
    // per-shard decomposition no longer lines up with object homes. Assemble
    // each object's contiguous stream instead: the prefix carried along by
    // migrate() plus the projection of its current shard's log since
    // arrival (op events of the object + that world's crash events) — still
    // one independent linearization per object, all handed to the hist
    // driver in one batch so the jobs fan-out and worst-offender selection
    // apply here exactly as on the unmigrated paths.
    std::vector<std::vector<hist::event>> logs;
    logs.reserve(shards_.size());
    for (const auto& sh : shards_) logs.push_back(sh->events());

    const object_registry& reg = object_registry::global();
    std::vector<std::unique_ptr<hist::spec>> spec_store;
    std::vector<hist::object_stream> streams;
    streams.reserve(placed_.size());
    for (const auto& [id, rec] : placed_) {
      std::vector<hist::event> stream = rec.prefix;
      append_object_slice(stream, logs[static_cast<std::size_t>(rec.shard)],
                          rec.arrival, id);
      spec_store.push_back(reg.make_spec(rec.kind, rec.params));
      streams.push_back({id, spec_store.back().get(), std::move(stream)});
    }
    hist::check_result res = hist::check_object_streams(streams, opt);
    if (!res.ok && res.failed_object >= 0) {
      const auto it = placed_.find(
          static_cast<std::uint32_t>(res.failed_object));
      if (it != placed_.end()) {
        res.message = "shard " + std::to_string(it->second.shard) +
                      (it->second.moved ? " (object migrated)" : "") + ": " +
                      res.message;
      }
    }
    return res;
  }

 private:
  /// Append `lg[from..)`'s events of object `id` (plus every crash event —
  /// that world's failure epochs) to `dst`, shifting the op events'
  /// client_seq past everything already in `dst` for the same pid. Each
  /// world numbers a process's ops from 1, so without the shift a migrated
  /// object's stream would repeat (pid, client_seq) pairs across world
  /// episodes and the checker's duplicate-completion suppression (keyed on
  /// exactly that pair) could swallow a real completion. All events of one
  /// episode shift uniformly, so invoke/response/recover stay matched.
  static void append_object_slice(std::vector<hist::event>& dst,
                                  const std::vector<hist::event>& lg,
                                  std::size_t from, std::uint32_t id) {
    std::map<int, std::uint64_t> base;
    for (const hist::event& e : dst) {
      if (e.kind != hist::event_kind::crash) {
        std::uint64_t& b = base[e.pid];
        b = std::max(b, e.desc.client_seq);
      }
    }
    for (std::size_t i = from; i < lg.size(); ++i) {
      hist::event e = lg[i];
      if (e.kind == hist::event_kind::crash) {
        dst.push_back(e);
      } else if (e.desc.object == id) {
        auto it = base.find(e.pid);
        if (it != base.end()) e.desc.client_seq += it->second;
        dst.push_back(e);
      }
    }
  }

  /// Everything the executor tracks per hosted object: how to rebuild it
  /// (kind/params), where it lives, its declaration index (range placement
  /// and rebalancing key off it), and the history it carried from previous
  /// homes.
  struct placed_object {
    std::string kind;
    object_params params;
    int shard = 0;
    std::size_t decl_index = 0;
    std::size_t arrival = 0;  // current shard's log length at arrival
    std::vector<hist::event> prefix;
    bool moved = false;  // has this object ever migrated?
  };

  exec_policy pol_;
  placement_policy placement_;
  std::vector<std::unique_ptr<harness>> shards_;
  std::map<std::uint32_t, placed_object> placed_;
  /// Ops scheduled since the last run(), per pid, in script order.
  std::map<int, std::vector<hist::op_desc>> pending_;
  /// Cumulative per-world programs (what each harness has been scripted).
  std::vector<std::map<int, std::vector<hist::op_desc>>> installed_;
  std::set<int> scripted_pids_;
  /// Per-shard log lengths at the end of each run() — the run coordinate of
  /// the merged-log order.
  std::vector<std::vector<std::size_t>> round_marks_;
  std::uint32_t next_id_ = 0;
  bool any_migrated_ = false;
  /// Last member: destroyed first, so workers are joined while everything
  /// they might reference is still alive.
  util::task_pool pool_;
};

// ---------------------------------------------------------------------------
// threads — free-running real threads (the arena path), with post-hoc
// per-object checking: a lincheck-style stress driver.

class threads_executor final : public executor {
 public:
  explicit threads_executor(const exec_policy& p)
      : pol_(p), board_(p.nprocs, dom_) {}

  exec_backend backend() const noexcept override {
    return exec_backend::threads;
  }
  int nprocs() const noexcept override { return pol_.nprocs; }
  int shards() const noexcept override { return 1; }
  int shard_of(std::uint32_t) const noexcept override { return 0; }
  const placement_policy& placement() const noexcept override {
    return pol_.placement;
  }
  int pool_workers() const noexcept override { return 0; }
  placement_policy current_assignment() const override {
    return pinned_placement({});
  }

  object_handle add(const std::string& kind,
                    const object_params& params) override {
    return add_as(next_id_, kind, params);
  }

  object_handle add_as(std::uint32_t id, const std::string& kind,
                       const object_params& params) override {
    if (by_id_.count(id) != 0) {
      throw std::invalid_argument("executor: duplicate object id " +
                                  std::to_string(id));
    }
    const kind_info& info = object_registry::global().at(kind);
    object_env env{pol_.nprocs, board_, dom_};
    created_object created = info.make(env, params);
    core::detectable_object& primary = created.primary();
    for (auto& obj : created.owned) objects_.push_back(std::move(obj));
    next_id_ = std::max(next_id_, id + 1);
    by_id_.emplace(id, &primary);
    specs_.emplace_back(id, info.make_spec(params));
    return object_handle(id, info.family, &primary, kind);
  }

  void script(int pid, std::vector<hist::op_desc> ops) override {
    check_pid(pid, pol_.nprocs);
    std::vector<hist::op_desc>& prog = scripts_[pid];
    prog.insert(prog.end(), ops.begin(), ops.end());
  }

  void migrate(std::uint32_t, int) override {
    no_migration(exec_backend::threads);
  }
  int rebalance(const placement_policy&) override {
    no_migration(exec_backend::threads);
  }

  sim::run_report run() override {
    // Each run executes the ops appended since the previous one (`done_`
    // tracks each pid's executed prefix), with client sequence numbers
    // continuing across runs.
    std::vector<std::exception_ptr> errors(scripts_.size());
    std::vector<std::thread> workers;
    workers.reserve(scripts_.size());
    std::uint64_t total_ops = 0;
    std::size_t w = 0;
    for (const auto& [pid, ops] : scripts_) {
      const std::size_t start = done_[pid];
      std::vector<hist::op_desc> batch(ops.begin() + static_cast<long>(start),
                                       ops.end());
      done_[pid] = ops.size();
      total_ops += batch.size();
      workers.emplace_back([this, pid = pid, batch = std::move(batch), start,
                            ep = &errors[w]] {
        try {
          client_thread(pid, batch, start);
        } catch (...) {
          *ep = std::current_exception();
        }
      });
      ++w;
    }
    for (std::thread& t : workers) t.join();
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    sim::run_report report;
    report.steps = total_ops;  // no simulator steps; report op count instead
    report.nvm_cells = dom_.cells_attached();
    report.nvm_bytes = dom_.bytes_attached();
    return report;
  }

  void reseed_crashes(std::uint64_t) override {
    // No crash plan to reseed: build() rejects them on this backend.
  }

  std::vector<hist::event> events() const override { return log_.snapshot(); }

  hist::check_result check(const hist::check_options& opt) const override {
    hist::object_spec_list specs;
    for (const auto& [id, proto] : specs_) specs.emplace_back(id, proto.get());
    return hist::check_durable_linearizability_per_object(log_.snapshot(),
                                                          specs, opt);
  }

 private:
  // The caller-side protocol of §2, same as core::runtime::announce_and_invoke
  // but free-running: the log's mutex serializes appends, and since an op's
  // invoke event precedes its first step and its response event follows its
  // return, the recorded intervals contain the real ones — precedence derived
  // from the log is sound for the linearizability check.
  void client_thread(int pid, const std::vector<hist::op_desc>& ops,
                     std::uint64_t start_seq) {
    core::ann_fields& ann = board_.of(pid);
    std::uint64_t seq = start_seq;
    for (hist::op_desc desc : ops) {
      desc.client_seq = ++seq;
      core::detectable_object& obj = *by_id_.at(desc.object);
      ann.valid.store(0);
      ann.op.store(desc);
      if (obj.wants_aux_reset()) {
        ann.resp.store(hist::k_bottom);
        ann.cp.store(0);
      }
      ann.valid.store(1);
      log_event(hist::event_kind::invoke, pid, desc);
      value_t v = obj.invoke(pid, desc);
      log_event(hist::event_kind::response, pid, desc, v);
    }
  }

  void log_event(hist::event_kind kind, int pid, const hist::op_desc& desc,
                 value_t value = hist::k_bottom) {
    hist::event e;
    e.kind = kind;
    e.pid = pid;
    e.desc = desc;
    e.value = value;
    log_.append(e);
  }

  exec_policy pol_;
  nvm::pmem_domain dom_;
  core::announcement_board board_;
  hist::log log_;
  std::vector<std::unique_ptr<core::detectable_object>> objects_;
  std::map<std::uint32_t, core::detectable_object*> by_id_;
  std::vector<std::pair<std::uint32_t, std::unique_ptr<hist::spec>>> specs_;
  std::map<int, std::vector<hist::op_desc>> scripts_;
  std::map<int, std::size_t> done_;  // executed prefix per pid
  std::uint32_t next_id_ = 0;
};

}  // namespace

std::unique_ptr<executor> make_executor(const exec_policy& p) {
  if (p.nprocs < 1) {
    throw std::invalid_argument("make_executor: nprocs must be >= 1");
  }
  if (p.shards < 1) {
    throw std::invalid_argument("make_executor: shards must be >= 1 (got " +
                                std::to_string(p.shards) + ")");
  }
  if (p.backend != exec_backend::sharded && p.shards > 1) {
    throw std::invalid_argument(
        std::string("make_executor: .shards(") + std::to_string(p.shards) +
        ") needs exec_backend::sharded — the " + backend_name(p.backend) +
        " backend runs exactly one world");
  }
  if (p.pool_threads < 0) {
    throw std::invalid_argument("make_executor: pool_threads must be >= 0 (0 "
                                "= auto-size to hardware)");
  }
  if (p.backend != exec_backend::sharded && p.pool_threads > 0) {
    throw std::invalid_argument(
        std::string("make_executor: .pool_threads(") +
        std::to_string(p.pool_threads) + ") needs exec_backend::sharded — "
        "only sharded runs drive worlds on a driver pool");
  }
  if (p.backend == exec_backend::sharded) {
    p.placement.validate(p.shards);
  }
  switch (p.backend) {
    case exec_backend::single:
      return std::make_unique<single_executor>(p);
    case exec_backend::sharded:
      return std::make_unique<sharded_executor>(p);
    case exec_backend::threads:
      if (!p.crash_steps.empty() || p.crash_random) {
        throw std::invalid_argument(
            "make_executor: the threads backend cannot deliver simulated "
            "crashes");
      }
      if (p.shared_cache) {
        throw std::invalid_argument(
            "make_executor: the threads backend has no shared-cache "
            "emulation");
      }
      if (p.sched.strat != sched::strategy::uniform_random ||
          !p.sched.pct_points.empty()) {
        throw std::invalid_argument(
            "make_executor: the threads backend runs free — schedule "
            "strategies need the simulated world");
      }
      if (p.persist != nvm::persist_model::strict) {
        throw std::invalid_argument(
            "make_executor: the threads backend has no buffered-persistency "
            "emulation");
      }
      if (p.wcfg.visibility != wmm::visibility_model::sc) {
        throw std::invalid_argument(
            "make_executor: the threads backend runs on real cores — "
            "store-buffer visibility models need the simulated world");
      }
      return std::make_unique<threads_executor>(p);
  }
  throw std::logic_error("make_executor: unhandled backend");
}

}  // namespace detect::api
