// Detectable durable FIFO queue (Friedman-style op identifiers).
#include <gtest/gtest.h>

#include "core/queue.hpp"
#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario queue_scenario(int nprocs,
                        std::function<scripts(api::queue)> make_scripts,
                        core::runtime::fail_policy policy =
                            core::runtime::fail_policy::skip) {
  return one_object<api::queue>("queue", nprocs, std::move(make_scripts),
                                policy);
}

TEST(detectable_queue, sequential_fifo) {
  auto cfg = queue_scenario(1, [](api::queue q) {
    return scripts{{0, {q.enq(1), q.enq(2), q.deq(), q.deq(), q.deq()}}};
  });
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_queue, empty_dequeue_returns_empty) {
  auto cfg = queue_scenario(1, [](api::queue q) {
    return scripts{{0, {q.deq(), q.enq(9), q.deq(), q.deq()}}};
  });
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(detectable_queue, concurrent_producers_consumers) {
  auto cfg = queue_scenario(4, [](api::queue q) {
    return scripts{
        {0, {q.enq(1), q.enq(2)}},
        {1, {q.enq(10), q.enq(20)}},
        {2, {q.deq(), q.deq()}},
        {3, {q.deq(), q.deq()}},
    };
  });
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(detectable_queue, crash_sweep_enq) {
  auto cfg = queue_scenario(2, [](api::queue q) {
    return scripts{
        {0, {q.enq(1), q.enq(2)}},
        {1, {q.deq()}},
    };
  });
  crash_sweep(cfg, 3);
}

TEST(detectable_queue, crash_sweep_deq) {
  auto cfg = queue_scenario(2, [](api::queue q) {
    return scripts{
        {0, {q.enq(1), q.deq()}},
        {1, {q.deq()}},
    };
  });
  crash_sweep(cfg, 7);
}

TEST(detectable_queue, crash_sweep_retry) {
  auto cfg = queue_scenario(2,
                            [](api::queue q) {
                              return scripts{
                                  {0, {q.enq(1), q.deq()}},
                                  {1, {q.enq(2), q.deq()}},
                              };
                            },
                            core::runtime::fail_policy::retry);
  crash_sweep(cfg, 13);
}

TEST(detectable_queue, crash_fuzz_mixed) {
  auto cfg = queue_scenario(3, [](api::queue q) {
    return scripts{
        {0, {q.enq(1), q.enq(2)}},
        {1, {q.deq(), q.enq(3)}},
        {2, {q.deq(), q.deq()}},
    };
  });
  crash_fuzz(cfg, 120, 2);
}

TEST(detectable_queue, exactly_once_dequeue_under_retry_fuzz) {
  // Every enqueued value must be dequeued at most once even across crashes
  // and retries — enforced by the FIFO spec check.
  auto cfg = queue_scenario(2,
                            [](api::queue q) {
                              return scripts{
                                  {0, {q.enq(1), q.enq(2), q.deq()}},
                                  {1, {q.deq(), q.deq()}},
                              };
                            },
                            core::runtime::fail_policy::retry);
  crash_fuzz(cfg, 100, 2);
}

TEST(detectable_queue, ids_minted_grows_with_operations) {
  auto h = api::harness::builder().procs(2).build();
  api::queue q = h.add_queue();
  h.script(0, {q.enq(1), q.enq(2), q.enq(3)});
  h.script(1, {q.deq(), q.deq()});
  h.run();
  EXPECT_GE(q.as<core::detectable_queue>().ids_minted(), 3u)
      << "identifier space must grow with the number of operations";
}

TEST(detectable_queue, pool_capacity_respected) {
  auto h = api::harness::builder().procs(1).build();
  api::queue q = h.add_queue(/*capacity=*/2);
  h.script(0, {q.enq(1), q.enq(2), q.enq(3)});  // 3rd exceeds pool
  EXPECT_THROW(h.run(), std::runtime_error);
}

class queue_property : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(queue_property, fifo_under_fuzz) {
  auto [seed, crashes] = GetParam();
  auto cfg = queue_scenario(2, [](api::queue q) {
    return scripts{
        {0, {q.enq(1), q.deq()}},
        {1, {q.enq(2), q.deq()}},
    };
  });
  crash_fuzz(cfg, 10, crashes, static_cast<std::uint64_t>(seed) * 67867967);
}

INSTANTIATE_TEST_SUITE_P(sweep, queue_property,
                         ::testing::Combine(::testing::Range(1, 7),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
