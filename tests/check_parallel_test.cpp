// Pins of the parallel per-object checking driver (hist::check_options).
//
// The contract under test: `jobs` is a pure mechanism knob. Whatever the
// fan-out, check_durable_linearizability_per_object must return the same
// verdict, the same worst-offender message, and the same node accounting as
// the serial walk — byte for byte — because every consumer (the differ's
// verdict comparisons, coverage bucketing, failure artifacts) assumes
// checker output is a function of the history alone. The 500-seed corpus
// here is the same generator slice the engine A/B test replays.
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/api.hpp"
#include "fuzz/scenario_gen.hpp"
#include "history/checker.hpp"

namespace {

using namespace detect;

void expect_same_check(const hist::check_result& a, const hist::check_result& b,
                       std::uint64_t seed) {
  ASSERT_EQ(a.ok, b.ok) << "seed " << seed;
  ASSERT_EQ(a.inconclusive, b.inconclusive) << "seed " << seed;
  ASSERT_EQ(a.nodes, b.nodes) << "seed " << seed;
  ASSERT_EQ(a.objects, b.objects) << "seed " << seed;
  ASSERT_EQ(a.synthesized_interval, b.synthesized_interval) << "seed " << seed;
  ASSERT_EQ(a.failed_object, b.failed_object) << "seed " << seed;
  ASSERT_EQ(a.message, b.message) << "seed " << seed;
}

// 500 generated scenarios — multi-object, sharded, crashy, strategy- and
// persistency-mixed — each checked serially and with a 4-lane fan-out
// sharing one memo. Verdicts, messages, and node counts must match exactly.
TEST(check_parallel, jobs4_matches_serial_on_500_seed_corpus) {
  fuzz::gen_config cfg;
  cfg.max_procs = 3;
  cfg.max_ops = 6;
  cfg.max_shards = 3;
  cfg.max_objects = 3;
  cfg.object_kind_pool = {"reg", "cas", "counter", "queue", "stack"};
  cfg.sched_pool = {"round_robin", "uniform_random", "pct"};
  cfg.persist_pool = {"strict", "buffered"};
  const std::vector<std::string> kinds = {"reg",   "cas",     "counter",
                                          "queue", "stack",   "swap",
                                          "tas",   "max_reg", "lock"};
  hist::lin_memo memo;
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    api::scripted_scenario s =
        fuzz::generate(seed, kinds[seed % kinds.size()], cfg);

    hist::check_options serial;
    serial.jobs = 1;
    api::scripted_outcome one = api::replay(s, serial);

    hist::check_options fanout;
    fanout.jobs = 4;
    fanout.memo = &memo;  // cross-scenario sharing, under concurrent lanes
    api::scripted_outcome four = api::replay(s, fanout);

    ASSERT_EQ(one.log_text, four.log_text) << "seed " << seed;
    expect_same_check(one.check, four.check, seed);
  }
  // The shared memo genuinely absorbed repeat sub-histories across the
  // corpus — the fan-out did not bypass it.
  EXPECT_GT(memo.hits(), 0u);
}

// jobs = 0 (auto) must agree with serial too, whatever lane count the host
// resolves it to (a 1-core host collapses it back to the inline walk).
TEST(check_parallel, jobs_auto_matches_serial) {
  fuzz::gen_config cfg;
  cfg.max_objects = 3;
  cfg.object_kind_pool = {"reg", "counter", "queue"};
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    api::scripted_scenario s = fuzz::generate(seed, "cas", cfg);
    hist::check_options serial;
    serial.jobs = 1;
    hist::check_options auto_jobs;
    auto_jobs.jobs = 0;
    expect_same_check(api::replay(s, serial).check,
                      api::replay(s, auto_jobs).check, seed);
  }
}

void push_event(std::vector<hist::event>& events, hist::event_kind kind,
                int pid, std::uint32_t obj, hist::opcode code, hist::value_t a,
                hist::value_t value) {
  hist::event e;
  e.kind = kind;
  e.pid = pid;
  e.desc.object = obj;
  e.desc.code = code;
  e.desc.a = a;
  e.value = value;
  events.push_back(e);
}

// Worst-offender selection is pinned: when several objects fail, the
// reported one is the failure with the most linearizer nodes — the
// hardest-to-refute witness — independent of jobs and of completion order.
TEST(check_parallel, worst_offender_is_max_nodes) {
  using hist::event_kind;
  using hist::opcode;
  std::vector<hist::event> events;
  // Object 0: fine. Object 1: fails after one op (tiny search). Object 2:
  // several successful writes before the impossible read — strictly more
  // nodes expanded than object 1's search.
  push_event(events, event_kind::invoke, 0, 0, opcode::reg_write, 7, 0);
  push_event(events, event_kind::response, 0, 0, opcode::reg_write, 7,
             hist::k_ack);
  push_event(events, event_kind::invoke, 0, 1, opcode::reg_read, 0, 0);
  push_event(events, event_kind::response, 0, 1, opcode::reg_read, 0, 42);
  for (hist::value_t v = 1; v <= 4; ++v) {
    push_event(events, event_kind::invoke, 0, 2, opcode::reg_write, v, 0);
    push_event(events, event_kind::response, 0, 2, opcode::reg_write, v,
               hist::k_ack);
  }
  push_event(events, event_kind::invoke, 0, 2, opcode::reg_read, 0, 0);
  push_event(events, event_kind::response, 0, 2, opcode::reg_read, 0, 42);

  hist::register_spec spec0(0);
  hist::register_spec spec1(0);
  hist::register_spec spec2(0);
  const hist::object_spec_list specs = {{0, &spec0}, {1, &spec1}, {2, &spec2}};

  for (int jobs : {1, 4}) {
    hist::check_options opt;
    opt.jobs = jobs;
    hist::check_result res =
        hist::check_durable_linearizability_per_object(events, specs, opt);
    EXPECT_FALSE(res.ok) << "jobs " << jobs;
    EXPECT_EQ(res.failed_object, 2) << "jobs " << jobs << ": " << res.message;
    EXPECT_NE(res.message.find("object 2"), std::string::npos) << res.message;
    // Node accounting covers ALL sub-checks, not just the reported one.
    EXPECT_EQ(res.objects, 3u);
  }
}

// Equal node counts tie-break to the smallest object id, so the verdict
// stays deterministic when two objects fail identically.
TEST(check_parallel, worst_offender_ties_break_to_smallest_id) {
  using hist::event_kind;
  using hist::opcode;
  std::vector<hist::event> events;
  // Objects 3 and 5: byte-identical impossible histories (same search, same
  // node count). Declaration order puts 5 first to rule out "first seen".
  for (std::uint32_t obj : {5u, 3u}) {
    push_event(events, event_kind::invoke, 0, obj, opcode::reg_read, 0, 0);
    push_event(events, event_kind::response, 0, obj, opcode::reg_read, 0, 42);
  }
  hist::register_spec spec_a(0);
  hist::register_spec spec_b(0);
  const hist::object_spec_list specs = {{5, &spec_a}, {3, &spec_b}};
  for (int jobs : {1, 4}) {
    hist::check_options opt;
    opt.jobs = jobs;
    hist::check_result res =
        hist::check_durable_linearizability_per_object(events, specs, opt);
    EXPECT_FALSE(res.ok) << "jobs " << jobs;
    EXPECT_EQ(res.failed_object, 3) << "jobs " << jobs << ": " << res.message;
    EXPECT_NE(res.message.find("object 3"), std::string::npos) << res.message;
  }
}

// Hammer one shared memo from several threads, each running 4-lane parallel
// checks — the synchronized lookup/store path the differ's variant families
// rely on. Run under the Sanitize preset this is the race regression test.
TEST(check_parallel, shared_memo_is_thread_safe_under_parallel_checks) {
  fuzz::gen_config cfg;
  cfg.max_objects = 3;
  cfg.object_kind_pool = {"reg", "cas", "counter"};
  std::vector<api::scripted_scenario> corpus;
  std::vector<hist::check_result> expected;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    corpus.push_back(fuzz::generate(seed, "reg", cfg));
    hist::check_options serial;
    serial.jobs = 1;
    expected.push_back(api::replay(corpus.back(), serial).check);
  }

  hist::lin_memo memo;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i < corpus.size(); ++i) {
          hist::check_options opt;
          opt.jobs = 4;
          opt.memo = &memo;
          hist::check_result got = api::replay(corpus[i], opt).check;
          if (got.ok != expected[i].ok || got.nodes != expected[i].nodes ||
              got.message != expected[i].message) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  EXPECT_GT(memo.hits(), 0u);
}

// The deprecated two-arg entry points must stay exact aliases of the
// options form — downstream callers migrate at their own pace.
TEST(check_parallel, deprecated_shims_alias_the_options_form) {
  fuzz::gen_config cfg;
  cfg.max_objects = 2;
  cfg.object_kind_pool = {"reg", "queue"};
  api::scripted_scenario s = fuzz::generate(77, "queue", cfg);
  api::scripted_outcome base = api::replay(s);

  hist::lin_memo memo;
  api::scripted_outcome via_memo_shim = api::replay(s, &memo);
  expect_same_check(base.check, via_memo_shim.check, 77);

  hist::check_options opt;
  opt.memo = &memo;
  api::scripted_outcome via_options = api::replay(s, opt);
  expect_same_check(base.check, via_options.check, 77);
  EXPECT_GT(memo.hits() + memo.misses(), 0u);
}

}  // namespace
