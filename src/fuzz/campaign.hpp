// campaign — multi-process fuzz campaign supervisor.
//
// One campaign_config consolidates run_fuzz's knob list (iterations, seed,
// steering, kinds, generator config) with the campaign-level concerns the
// CLI used to juggle loose (artifact dir, coverage output, job count, shared
// corpus dir) behind fluent setters in the style of executor::builder:
//
//   auto r = fuzz::run_campaign(fuzz::campaign_config()
//                                   .iterations(300000)
//                                   .seed(42)
//                                   .steer(true)
//                                   .jobs(4)
//                                   .corpus_dir("corpus/")
//                                   .artifact_dir("fuzz-artifacts/")
//                                   .coverage_out("coverage.json"));
//
// jobs <= 1 runs run_fuzz inline — byte-identical to the pre-campaign CLI.
// jobs > 1 forks N worker processes (POSIX; non-POSIX hosts fall back to the
// inline path with a note). The iteration range [0, iterations) is
// partitioned into N contiguous slices; every worker derives its scenarios
// from the same (base_seed, absolute-iteration) stream, so the campaign
// covers exactly the serial campaign's scenario set, N-ways parallel.
// Workers cross-pollinate steering corpora through the shared corpus
// directory, write per-worker summaries + shrunk failure artifacts into the
// artifact dir, and the parent merges coverage into one
// campaign-coverage.json: executed sums, buckets union (with per-worker
// provenance on every corpus entry), per-strategy tables recomputed from the
// union. A worker that dies without reporting (signal, OOM) is flagged
// `lost` and fails the campaign — silence is never success.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/fuzzer.hpp"

namespace detect::fuzz {

class campaign_config {
 public:
  /// The inner per-worker engine options. Exposed directly so CLI parsing
  /// can reach every generator knob without a setter per field; the fluent
  /// setters below cover the campaign-shaping subset.
  fuzz_options options;

  campaign_config& iterations(std::uint64_t n) {
    options.iterations = n;
    return *this;
  }
  campaign_config& seed(std::uint64_t s) {
    options.base_seed = s;
    return *this;
  }
  campaign_config& kinds(std::vector<std::string> k) {
    options.kinds = std::move(k);
    return *this;
  }
  campaign_config& steer(bool on) {
    options.steer = on;
    return *this;
  }
  campaign_config& check_jobs(int n) {
    options.check_jobs = n;
    return *this;
  }
  /// Worker processes. 1 (default) = inline in this process; N > 1 forks N
  /// workers over a partition of the iteration range (clamped to the
  /// iteration count — a 3-iteration --jobs 8 campaign forks 3 workers).
  campaign_config& jobs(int n) {
    jobs_ = n;
    return *this;
  }
  /// Shared on-disk corpus directory (see fuzz_options::corpus_dir). Armed
  /// automatically per worker; also usable with jobs == 1 to persist and
  /// resume discoveries across campaigns.
  campaign_config& corpus_dir(std::string dir) {
    options.corpus_dir = std::move(dir);
    return *this;
  }
  /// Where failure artifacts and per-worker summaries land. Forked
  /// campaigns require one (failures in a child are otherwise unreportable
  /// in full); run_campaign defaults it to "fuzz-artifacts" when jobs > 1
  /// and none is set.
  campaign_config& artifact_dir(std::string dir) {
    artifact_dir_ = std::move(dir);
    return *this;
  }
  /// Merged coverage JSON path ("" = don't write). Inline campaigns write
  /// the classic single-campaign shape; forked campaigns add `jobs` and a
  /// per-worker `workers` table.
  campaign_config& coverage_out(std::string path) {
    coverage_out_ = std::move(path);
    return *this;
  }
  campaign_config& quiet(bool on) {
    quiet_ = on;
    return *this;
  }

  int jobs() const noexcept { return jobs_; }
  const std::string& artifact_dir() const noexcept { return artifact_dir_; }
  const std::string& coverage_out() const noexcept { return coverage_out_; }
  bool quiet() const noexcept { return quiet_; }

 private:
  int jobs_ = 1;
  std::string artifact_dir_;
  std::string coverage_out_;
  bool quiet_ = false;
};

/// Partition `total` iterations into at most `jobs` contiguous
/// (first_iteration, count) slices: every iteration covered exactly once, the
/// remainder spread one-each over the leading workers, empty slices dropped.
std::vector<std::pair<std::uint64_t, std::uint64_t>> partition_iterations(
    std::uint64_t total, int jobs);

/// One worker's outcome as the supervisor saw it.
struct worker_report {
  int worker = 0;
  std::uint64_t first_iteration = 0;
  std::uint64_t iterations = 0;  // slice size assigned
  std::uint64_t executed = 0;    // iterations actually run
  std::uint64_t replays = 0;
  std::size_t distinct_buckets = 0;  // within this worker's slice
  bool failed = false;  // found a real failure (artifact written)
  bool error = false;   // infrastructure error (exit 2)
  bool lost = false;    // died without reporting (signal/OOM) — flagged red
  std::uint64_t failure_iteration = 0;  // valid when failed
  std::string failure_artifact;         // path, when failed and writable
};

struct campaign_result {
  /// Inline path: the run's full fuzz_stats. Forked path: merged coverage
  /// (union buckets, summed executed) with `failure` unset — failures live
  /// in the workers' artifacts, pointed at by the reports below.
  fuzz_stats stats;
  std::vector<worker_report> workers;  // one entry even on the inline path
  bool forked = false;
  /// fuzz_main's exit code: 0 clean, 1 failure found, 2 infrastructure
  /// error (including lost workers and unwritable outputs).
  int exit_code = 0;
};

/// Run the campaign `cfg` describes. `progress`, when set and not quiet, is
/// called per iteration on the inline path only (forked workers print their
/// own prefixed lines instead — callbacks cannot cross fork boundaries).
campaign_result run_campaign(
    const campaign_config& cfg,
    const std::function<void(std::uint64_t, std::uint64_t,
                             const std::string&)>& progress = nullptr);

}  // namespace detect::fuzz
