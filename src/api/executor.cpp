// The three execution backends behind detect::api::executor.
#include "api/executor.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace detect::api {

const char* backend_name(exec_backend b) noexcept {
  switch (b) {
    case exec_backend::single: return "single";
    case exec_backend::sharded: return "sharded";
    case exec_backend::threads: return "threads";
  }
  return "?";
}

exec_backend backend_from_name(const std::string& name) {
  if (name == "single") return exec_backend::single;
  if (name == "sharded") return exec_backend::sharded;
  if (name == "threads") return exec_backend::threads;
  throw std::invalid_argument("backend_from_name: unknown backend '" + name +
                              "'");
}

std::string executor::log_text() const {
  std::ostringstream os;
  for (const hist::event& e : events()) os << e.to_string() << '\n';
  return os.str();
}

std::unique_ptr<executor> executor::builder::build() const {
  return make_executor(pol_);
}

namespace {

/// Uniform script() contract across backends: a bad pid throws here, at
/// scripting time, not as an opaque error deep inside run().
void check_pid(int pid, int nprocs) {
  if (pid < 0 || pid >= nprocs) {
    throw std::invalid_argument("executor: script pid " + std::to_string(pid) +
                                " out of range for " + std::to_string(nprocs) +
                                " procs");
  }
}

/// One harness configured per `p` — the building block of the single backend
/// (one of them) and the sharded backend (one per shard).
harness build_harness(const exec_policy& p) {
  harness::builder b;
  b.procs(p.nprocs).max_steps(p.wcfg.max_steps).fail_policy(p.fail);
  if (p.sched_seed) b.seed(*p.sched_seed);
  if (!p.crash_steps.empty()) b.crash_at(p.crash_steps);
  if (p.crash_random) {
    auto [seed, rate, max] = *p.crash_random;
    b.crash_random(seed, rate, max);
  }
  if (p.shared_cache) b.shared_cache(p.auto_persist);
  return b.build();
}

// ---------------------------------------------------------------------------
// single — today's one-world harness, verbatim.

class single_executor final : public executor {
 public:
  explicit single_executor(const exec_policy& p)
      : pol_(p), h_(build_harness(p)) {}

  exec_backend backend() const noexcept override {
    return exec_backend::single;
  }
  int nprocs() const noexcept override { return pol_.nprocs; }
  int shards() const noexcept override { return 1; }
  int shard_of(std::uint32_t) const noexcept override { return 0; }

  object_handle add(const std::string& kind,
                    const object_params& params) override {
    return h_.add(kind, params);
  }
  object_handle add_as(std::uint32_t id, const std::string& kind,
                       const object_params& params) override {
    return h_.add_as(id, kind, params);
  }
  void script(int pid, std::vector<hist::op_desc> ops) override {
    check_pid(pid, pol_.nprocs);
    h_.script(pid, std::move(ops));
  }
  sim::run_report run() override { return h_.run(); }

  std::vector<hist::event> events() const override { return h_.events(); }
  hist::check_result check(std::size_t node_budget) const override {
    return h_.check_per_object(node_budget);
  }

 private:
  exec_policy pol_;
  harness h_;
};

// ---------------------------------------------------------------------------
// sharded — K one-world harnesses with object-id routing.

class sharded_executor final : public executor {
 public:
  explicit sharded_executor(const exec_policy& p) : pol_(p) {
    shards_.reserve(static_cast<std::size_t>(p.shards));
    for (int k = 0; k < p.shards; ++k) {
      shards_.push_back(std::make_unique<harness>(build_harness(p)));
    }
  }

  exec_backend backend() const noexcept override {
    return exec_backend::sharded;
  }
  int nprocs() const noexcept override { return pol_.nprocs; }
  int shards() const noexcept override {
    return static_cast<int>(shards_.size());
  }
  int shard_of(std::uint32_t object_id) const noexcept override {
    return static_cast<int>(object_id % shards_.size());
  }

  object_handle add(const std::string& kind,
                    const object_params& params) override {
    return add_as(next_id_, kind, params);
  }

  object_handle add_as(std::uint32_t id, const std::string& kind,
                       const object_params& params) override {
    next_id_ = std::max(next_id_, id + 1);
    return shards_[static_cast<std::size_t>(shard_of(id))]->add_as(id, kind,
                                                                   params);
  }

  void script(int pid, std::vector<hist::op_desc> ops) override {
    check_pid(pid, pol_.nprocs);
    scripts_[pid] = std::move(ops);
  }

  sim::run_report run() override {
    // Split every script by the owning shard, preserving per-shard program
    // order; a pid with no ops on a shard gets no client task there. A pid
    // whose whole script is empty still gets an (empty) client task on
    // shard 0, exactly as the single backend submits one — without it the
    // worlds' task sets differ and single-vs-sharded equivalence breaks on
    // shrinker-produced scenarios with emptied scripts.
    for (const auto& [pid, ops] : scripts_) {
      std::vector<std::vector<hist::op_desc>> per_shard(shards_.size());
      for (const hist::op_desc& d : ops) {
        per_shard[static_cast<std::size_t>(shard_of(d.object))].push_back(d);
      }
      bool scripted = false;
      for (std::size_t k = 0; k < shards_.size(); ++k) {
        if (!per_shard[k].empty()) {
          shards_[k]->script(pid, std::move(per_shard[k]));
          scripted = true;
        }
      }
      if (!scripted) shards_[0]->script(pid, {});
    }

    // Worlds are self-contained (own mutex, own processes, own NVM domain,
    // thread-local access hooks), so shards run on parallel driver threads;
    // each shard stays internally deterministic, which is all replay
    // reproducibility needs.
    std::vector<sim::run_report> reports(shards_.size());
    std::vector<std::exception_ptr> errors(shards_.size());
    std::vector<std::thread> drivers;
    drivers.reserve(shards_.size());
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      drivers.emplace_back([this, k, &reports, &errors] {
        try {
          reports[k] = shards_[k]->run();
        } catch (...) {
          errors[k] = std::current_exception();
        }
      });
    }
    for (std::thread& t : drivers) t.join();
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }

    sim::run_report total;
    for (const sim::run_report& r : reports) {
      total.steps += r.steps;
      total.crashes += r.crashes;
      total.hit_step_limit = total.hit_step_limit || r.hit_step_limit;
    }
    return total;
  }

  std::vector<hist::event> events() const override {
    std::vector<std::vector<hist::event>> logs;
    logs.reserve(shards_.size());
    std::size_t longest = 0;
    for (const auto& sh : shards_) {
      logs.push_back(sh->events());
      longest = std::max(longest, logs.back().size());
    }
    // Stable global order: shard-local index, then shard id. Each shard's
    // log stays a subsequence of the merge.
    std::vector<hist::event> out;
    for (std::size_t i = 0; i < longest; ++i) {
      for (const auto& lg : logs) {
        if (i < lg.size()) out.push_back(lg[i]);
      }
    }
    return out;
  }

  hist::check_result check(std::size_t node_budget) const override {
    // Crash events are per shard (each shard is its own failure domain), so
    // decompose shard by shard, each against its own objects' specs.
    hist::check_result res;
    res.ok = true;
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      hist::check_result sub = shards_[k]->check_per_object(node_budget);
      res.nodes += sub.nodes;
      res.objects += sub.objects;
      res.synthesized_interval |= sub.synthesized_interval;
      if (!sub.ok) {
        res.ok = false;
        res.inconclusive = sub.inconclusive;
        res.message =
            "shard " + std::to_string(k) + ": " + sub.message;
        return res;
      }
    }
    return res;
  }

 private:
  exec_policy pol_;
  std::vector<std::unique_ptr<harness>> shards_;
  std::map<int, std::vector<hist::op_desc>> scripts_;
  std::uint32_t next_id_ = 0;
};

// ---------------------------------------------------------------------------
// threads — free-running real threads (the arena path), with post-hoc
// per-object checking: a lincheck-style stress driver.

class threads_executor final : public executor {
 public:
  explicit threads_executor(const exec_policy& p)
      : pol_(p), board_(p.nprocs, dom_) {}

  exec_backend backend() const noexcept override {
    return exec_backend::threads;
  }
  int nprocs() const noexcept override { return pol_.nprocs; }
  int shards() const noexcept override { return 1; }
  int shard_of(std::uint32_t) const noexcept override { return 0; }

  object_handle add(const std::string& kind,
                    const object_params& params) override {
    return add_as(next_id_, kind, params);
  }

  object_handle add_as(std::uint32_t id, const std::string& kind,
                       const object_params& params) override {
    if (by_id_.count(id) != 0) {
      throw std::invalid_argument("executor: duplicate object id " +
                                  std::to_string(id));
    }
    const kind_info& info = object_registry::global().at(kind);
    object_env env{pol_.nprocs, board_, dom_};
    created_object created = info.make(env, params);
    core::detectable_object& primary = created.primary();
    for (auto& obj : created.owned) objects_.push_back(std::move(obj));
    next_id_ = std::max(next_id_, id + 1);
    by_id_.emplace(id, &primary);
    specs_.emplace_back(id, info.make_spec(params));
    return object_handle(id, info.family, &primary, kind);
  }

  void script(int pid, std::vector<hist::op_desc> ops) override {
    check_pid(pid, pol_.nprocs);
    scripts_[pid] = std::move(ops);
  }

  sim::run_report run() override {
    std::vector<std::exception_ptr> errors(scripts_.size());
    std::vector<std::thread> workers;
    workers.reserve(scripts_.size());
    std::uint64_t total_ops = 0;
    std::size_t w = 0;
    for (const auto& [pid, ops] : scripts_) {
      total_ops += ops.size();
      workers.emplace_back([this, pid = pid, &ops = ops, ep = &errors[w]] {
        try {
          client_thread(pid, ops);
        } catch (...) {
          *ep = std::current_exception();
        }
      });
      ++w;
    }
    for (std::thread& t : workers) t.join();
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    sim::run_report report;
    report.steps = total_ops;  // no simulator steps; report op count instead
    return report;
  }

  std::vector<hist::event> events() const override { return log_.snapshot(); }

  hist::check_result check(std::size_t node_budget) const override {
    hist::object_spec_list specs;
    for (const auto& [id, proto] : specs_) specs.emplace_back(id, proto.get());
    return hist::check_durable_linearizability_per_object(log_.snapshot(),
                                                          specs, node_budget);
  }

 private:
  // The caller-side protocol of §2, same as core::runtime::announce_and_invoke
  // but free-running: the log's mutex serializes appends, and since an op's
  // invoke event precedes its first step and its response event follows its
  // return, the recorded intervals contain the real ones — precedence derived
  // from the log is sound for the linearizability check.
  void client_thread(int pid, const std::vector<hist::op_desc>& ops) {
    core::ann_fields& ann = board_.of(pid);
    std::uint64_t seq = 0;
    for (hist::op_desc desc : ops) {
      desc.client_seq = ++seq;
      core::detectable_object& obj = *by_id_.at(desc.object);
      ann.valid.store(0);
      ann.op.store(desc);
      if (obj.wants_aux_reset()) {
        ann.resp.store(hist::k_bottom);
        ann.cp.store(0);
      }
      ann.valid.store(1);
      log_event(hist::event_kind::invoke, pid, desc);
      value_t v = obj.invoke(pid, desc);
      log_event(hist::event_kind::response, pid, desc, v);
    }
  }

  void log_event(hist::event_kind kind, int pid, const hist::op_desc& desc,
                 value_t value = hist::k_bottom) {
    hist::event e;
    e.kind = kind;
    e.pid = pid;
    e.desc = desc;
    e.value = value;
    log_.append(e);
  }

  exec_policy pol_;
  nvm::pmem_domain dom_;
  core::announcement_board board_;
  hist::log log_;
  std::vector<std::unique_ptr<core::detectable_object>> objects_;
  std::map<std::uint32_t, core::detectable_object*> by_id_;
  std::vector<std::pair<std::uint32_t, std::unique_ptr<hist::spec>>> specs_;
  std::map<int, std::vector<hist::op_desc>> scripts_;
  std::uint32_t next_id_ = 0;
};

}  // namespace

std::unique_ptr<executor> make_executor(const exec_policy& p) {
  if (p.nprocs < 1) {
    throw std::invalid_argument("make_executor: nprocs must be >= 1");
  }
  if (p.shards < 1) {
    throw std::invalid_argument("make_executor: shards must be >= 1");
  }
  switch (p.backend) {
    case exec_backend::single:
      return std::make_unique<single_executor>(p);
    case exec_backend::sharded:
      return std::make_unique<sharded_executor>(p);
    case exec_backend::threads:
      if (!p.crash_steps.empty() || p.crash_random) {
        throw std::invalid_argument(
            "make_executor: the threads backend cannot deliver simulated "
            "crashes");
      }
      if (p.shared_cache) {
        throw std::invalid_argument(
            "make_executor: the threads backend has no shared-cache "
            "emulation");
      }
      return std::make_unique<threads_executor>(p);
  }
  throw std::logic_error("make_executor: unhandled backend");
}

}  // namespace detect::api
