#include "fuzz/shrinker.hpp"

#include <vector>

namespace detect::fuzz {

namespace {

/// Keep `edit(s)` if the result still fails. Returns true on progress.
/// NOTE: a kept edit replaces `s` wholesale — callers must not hold
/// iterators/references into `s` across a try_edit call.
bool try_edit(api::scripted_scenario& s, const fail_predicate& fails,
              const std::function<bool(api::scripted_scenario&)>& edit) {
  api::scripted_scenario candidate = s;
  if (!edit(candidate)) return false;  // edit not applicable
  if (!fails(candidate)) return false;
  s = std::move(candidate);
  return true;
}

/// Renumber script pids densely (0..k-1) and shrink nprocs to match. Scripts
/// stay in ascending-pid order, so renumbering preserves relative identity;
/// lock ops carry the caller's pid as their argument, so those are rewritten
/// to the new pid to keep the scenario well-formed.
void compact_pids(api::scripted_scenario& s) {
  std::map<int, std::vector<hist::op_desc>> dense;
  int next = 0;
  for (auto& [pid, ops] : s.scripts) {
    for (hist::op_desc& d : ops) {
      if (d.code == hist::opcode::lock_try ||
          d.code == hist::opcode::lock_release) {
        d.a = next;
      }
    }
    dense[next++] = std::move(ops);
  }
  s.scripts = std::move(dense);
  if (next > 0) s.nprocs = next;
}

std::vector<int> pids_of(const api::scripted_scenario& s) {
  std::vector<int> pids;
  pids.reserve(s.scripts.size());
  for (const auto& [pid, ops] : s.scripts) pids.push_back(pid);
  return pids;
}

/// The usage contracts the generator enforces (scenario_gen.cpp) must
/// survive shrinking, or a candidate can "fail" for the contract violation
/// instead of the original defect and the minimized artifact blames a
/// non-bug. Checked per declared object on every candidate before the fail
/// predicate runs.
bool respects_contracts(const api::scripted_scenario& s) {
  const api::object_registry& reg = api::object_registry::global();
  // Drain plans only mean something with live store buffers; an sc
  // candidate carrying one is non-canonical (enforce_contracts clears it).
  if (s.visibility == wmm::visibility_model::sc && !s.drain_steps.empty()) {
    return false;
  }
  bool any_lock = false;
  for (const api::scenario_object& o : s.objects) {
    if (!reg.contains(o.kind)) continue;  // custom kind: nothing to check
    any_lock = any_lock ||
               reg.at(o.kind).family == api::op_family::lock;
  }
  // Crashy lock scenarios must retry (a crash-skipped release leaves
  // holding-state uncertain) ...
  if (any_lock && !s.crash_steps.empty() &&
      s.policy != core::runtime::fail_policy::retry) {
    return false;
  }
  // Migration plans and crash plans do not mix (enforce_contracts never
  // generates the combination; a shrink candidate must not reintroduce it),
  // and a migration plan must name declared objects on in-range shards.
  if (!s.migrations.empty()) {
    if (!s.crash_steps.empty()) return false;
    for (const auto& [id, shard] : s.migrations) {
      if (s.find_object(id) == nullptr || shard < 0 ||
          shard >= std::max(1, s.shards)) {
        return false;
      }
    }
  }
  for (const auto& [pid, ops] : s.scripts) {
    // ... and no process may re-invoke try_lock on an object it may still
    // hold (tracked per lock object).
    std::map<std::uint32_t, bool> may_hold;
    for (const hist::op_desc& d : ops) {
      if (d.code == hist::opcode::lock_try) {
        if (may_hold[d.object]) return false;
        may_hold[d.object] = true;
      } else if (d.code == hist::opcode::lock_release) {
        may_hold[d.object] = false;
      } else if (d.code == hist::opcode::cas && d.a == d.b) {
        // Algorithm 2's failed-CAS linearization needs old != new.
        return false;
      }
    }
    // A migration plan replays the scripts a second time, so every lock
    // script must end not-holding (else round two re-invokes try_lock while
    // possibly held).
    if (!s.migrations.empty()) {
      for (const auto& [object, held] : may_hold) {
        if (held) return false;
      }
    }
  }
  return true;
}

}  // namespace

api::scripted_scenario shrink(api::scripted_scenario s,
                              const fail_predicate& raw_fails,
                              int max_rounds) {
  if (!raw_fails(s)) return s;
  fail_predicate fails = [&raw_fails](const api::scripted_scenario& c) {
    return respects_contracts(c) && raw_fails(c);
  };

  for (int round = 0; round < max_rounds; ++round) {
    bool progress = false;

    // 0. Schedule canonicalization — before any structural pass, so
    // schedule-independent failures shrink on the canonical (round_robin,
    // strict) schedule and schedule-dependent ones keep only the preemption
    // points they actually need.
    progress |= try_edit(s, fails, [](api::scripted_scenario& c) {
      if (c.sched == sched::sched_policy{.strat =
                                             sched::strategy::round_robin}) {
        return false;
      }
      c.sched = {.strat = sched::strategy::round_robin};
      return true;
    });
    progress |= try_edit(s, fails, [](api::scripted_scenario& c) {
      if (c.persist == nvm::persist_model::strict) return false;
      c.persist = nvm::persist_model::strict;
      return true;
    });
    // Visibility canonicalization: failures that do not need delayed store
    // visibility shrink back to sc (dropping the drain plan with it), and
    // ones that do keep only the explicit drain points they actually need —
    // the repro then reads as "these specific drains, nothing else".
    progress |= try_edit(s, fails, [](api::scripted_scenario& c) {
      if (c.visibility == wmm::visibility_model::sc) return false;
      c.visibility = wmm::visibility_model::sc;
      c.drain_steps.clear();
      return true;
    });
    for (int i = static_cast<int>(s.drain_steps.size()) - 1; i >= 0; --i) {
      progress |= try_edit(s, fails, [i](api::scripted_scenario& c) {
        if (i >= static_cast<int>(c.drain_steps.size())) return false;
        c.drain_steps.erase(c.drain_steps.begin() + i);
        return true;
      });
    }
    for (int i = static_cast<int>(s.sched.pct_points.size()) - 1; i >= 0;
         --i) {
      progress |= try_edit(s, fails, [i](api::scripted_scenario& c) {
        if (i >= static_cast<int>(c.sched.pct_points.size())) return false;
        c.sched.pct_points.erase(c.sched.pct_points.begin() + i);
        return true;
      });
    }

    // 1. Whole processes, highest pid first (dropping a later pid leaves the
    // earlier ones unrenumbered, so the pid snapshot stays valid).
    {
      std::vector<int> pids = pids_of(s);
      for (auto it = pids.rbegin(); it != pids.rend(); ++it) {
        int p = *it;
        progress |= try_edit(s, fails, [p](api::scripted_scenario& c) {
          if (c.scripts.size() <= 1 || c.scripts.count(p) == 0) return false;
          c.scripts.erase(p);
          compact_pids(c);
          return true;
        });
      }
    }

    // 1b. Whole objects, last declared first: drop the object and every op
    // targeting it (a scenario must keep at least one object).
    for (int i = static_cast<int>(s.objects.size()) - 1; i >= 0; --i) {
      progress |= try_edit(s, fails, [i](api::scripted_scenario& c) {
        if (c.objects.size() <= 1 ||
            i >= static_cast<int>(c.objects.size())) {
          return false;
        }
        const std::uint32_t id = c.objects[static_cast<std::size_t>(i)].id;
        c.objects.erase(c.objects.begin() + i);
        for (auto& [pid, ops] : c.scripts) {
          std::erase_if(ops, [id](const hist::op_desc& d) {
            return d.object == id;
          });
        }
        return true;
      });
    }

    // 1c. Merge same-kind object pairs: retarget the later object's ops onto
    // the earlier one and drop the later declaration — fewer objects, same
    // op count, often enough to collapse a cross-shard failure into one
    // world.
    for (int j = static_cast<int>(s.objects.size()) - 1; j >= 1; --j) {
      progress |= try_edit(s, fails, [j](api::scripted_scenario& c) {
        if (j >= static_cast<int>(c.objects.size())) return false;
        const api::scenario_object& victim =
            c.objects[static_cast<std::size_t>(j)];
        int into = -1;
        for (int i = 0; i < j; ++i) {
          if (c.objects[static_cast<std::size_t>(i)].kind == victim.kind) {
            into = i;
            break;
          }
        }
        if (into < 0) return false;
        const std::uint32_t from = victim.id;
        const std::uint32_t to =
            c.objects[static_cast<std::size_t>(into)].id;
        c.objects.erase(c.objects.begin() + j);
        for (auto& [pid, ops] : c.scripts) {
          for (hist::op_desc& d : ops) {
            if (d.object == from) d.object = to;
          }
        }
        return true;
      });
    }

    // 2a. Suffix halves per process.
    for (int p : pids_of(s)) {
      while (try_edit(s, fails, [p](api::scripted_scenario& c) {
        auto it = c.scripts.find(p);
        if (it == c.scripts.end() || it->second.size() < 2) return false;
        it->second.resize(it->second.size() - it->second.size() / 2);
        return true;
      })) {
        progress = true;
      }
    }

    // 2b. Individual ops, back to front (an empty script is legal; step 1
    // removes emptied processes on the next round).
    for (int p : pids_of(s)) {
      auto it = s.scripts.find(p);
      if (it == s.scripts.end()) continue;
      for (int i = static_cast<int>(it->second.size()) - 1; i >= 0; --i) {
        progress |= try_edit(s, fails, [p, i](api::scripted_scenario& c) {
          auto cit = c.scripts.find(p);
          if (cit == c.scripts.end() ||
              i >= static_cast<int>(cit->second.size())) {
            return false;
          }
          cit->second.erase(cit->second.begin() + i);
          return true;
        });
        it = s.scripts.find(p);  // s may have been replaced by the edit
        if (it == s.scripts.end()) break;
      }
    }

    // 2c. Retarget ops onto the first same-kind object: pulls a scattered
    // failure onto one object so the object-dropping pass can finish the
    // job next round.
    for (int p : pids_of(s)) {
      std::size_t len = s.scripts.count(p) != 0 ? s.scripts.at(p).size() : 0;
      for (std::size_t i = 0; i < len; ++i) {
        progress |= try_edit(s, fails, [p, i](api::scripted_scenario& c) {
          auto cit = c.scripts.find(p);
          if (cit == c.scripts.end() || i >= cit->second.size()) return false;
          hist::op_desc& d = cit->second[i];
          const api::scenario_object* from = c.find_object(d.object);
          if (from == nullptr) return false;
          for (const api::scenario_object& o : c.objects) {
            if (o.id == d.object) break;  // already the first of its kind
            if (o.kind == from->kind) {
              d.object = o.id;
              return true;
            }
          }
          return false;
        });
      }
    }

    // 2d. Migration steps, back to front, then the whole plan at once (a
    // plan-free scenario also stops running its scripts twice — a big cut).
    for (int i = static_cast<int>(s.migrations.size()) - 1; i >= 0; --i) {
      progress |= try_edit(s, fails, [i](api::scripted_scenario& c) {
        if (i >= static_cast<int>(c.migrations.size())) return false;
        c.migrations.erase(c.migrations.begin() + i);
        return true;
      });
    }
    progress |= try_edit(s, fails, [](api::scripted_scenario& c) {
      if (c.migrations.empty()) return false;
      c.migrations.clear();
      return true;
    });

    // 3. Crash steps, back to front.
    for (int i = static_cast<int>(s.crash_steps.size()) - 1; i >= 0; --i) {
      progress |= try_edit(s, fails, [i](api::scripted_scenario& c) {
        if (i >= static_cast<int>(c.crash_steps.size())) return false;
        c.crash_steps.erase(c.crash_steps.begin() + i);
        return true;
      });
    }

    // 4. Knob simplification.
    progress |= try_edit(s, fails, [](api::scripted_scenario& c) {
      if (c.policy == core::runtime::fail_policy::skip) return false;
      c.policy = core::runtime::fail_policy::skip;
      return true;
    });
    progress |= try_edit(s, fails, [](api::scripted_scenario& c) {
      if (!c.shared_cache) return false;
      c.shared_cache = false;
      return true;
    });
    // Placement first simplifies to modulo (if the failure survives, the
    // routing policy is not the culprit) ...
    progress |= try_edit(s, fails, [](api::scripted_scenario& c) {
      if (c.placement == api::placement_policy{}) return false;
      c.placement = {};
      return true;
    });
    // ... then a sharded-backend scenario tries the single backend (if the
    // failure survives, it is not a cross-shard bug) ...
    progress |= try_edit(s, fails, [](api::scripted_scenario& c) {
      if (c.backend != api::exec_backend::sharded) return false;
      c.backend = api::exec_backend::single;
      return true;
    });
    // ... then the sharded-equivalence diff is dropped (shards -> 1): if the
    // failure still survives, the simpler single-backend artifact is the one
    // to debug.
    progress |= try_edit(s, fails, [](api::scripted_scenario& c) {
      if (c.shards <= 1) return false;
      c.shards = 1;
      return true;
    });

    // 5. Zero op arguments.
    for (int p : pids_of(s)) {
      std::size_t len =
          s.scripts.count(p) != 0 ? s.scripts.at(p).size() : 0;
      for (std::size_t i = 0; i < len; ++i) {
        progress |= try_edit(s, fails, [p, i](api::scripted_scenario& c) {
          auto cit = c.scripts.find(p);
          if (cit == c.scripts.end() || i >= cit->second.size()) return false;
          hist::op_desc& d = cit->second[i];
          if (d.code == hist::opcode::lock_try ||
              d.code == hist::opcode::lock_release) {
            return false;  // lock args are the caller pid, not a value
          }
          if (d.code == hist::opcode::cas) {
            // Preserve the old != new usage contract (detectable_cas.hpp):
            // simplify toward Cas(0, 1), never the degenerate Cas(0, 0).
            if (d.a == 0 && d.b == 1) return false;
            d.a = 0;
            d.b = 1;
            return true;
          }
          if (d.a == 0 && d.b == 0) return false;
          d.a = 0;
          d.b = 0;
          return true;
        });
      }
    }

    if (!progress) break;
  }
  return s;
}

}  // namespace detect::fuzz
