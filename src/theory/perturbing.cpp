#include "theory/perturbing.hpp"

#include <functional>
#include <sstream>

namespace detect::theory {

std::string abstract_op::to_string() const {
  std::ostringstream os;
  os << "p" << pid << ":" << to_desc().to_string();
  return os.str();
}

std::string dp_witness::to_string() const {
  std::ostringstream os;
  os << "H1=[";
  for (const auto& o : h1) os << o.to_string() << " ";
  os << "] Opp=" << opp.to_string() << " Op'=" << op1.to_string() << " ext=[";
  for (const auto& o : extension) os << o.to_string() << " ";
  os << "] Opq=" << op2.to_string();
  return os.str();
}

hist::value_t response_after(const hist::spec& init,
                             const std::vector<abstract_op>& h,
                             const abstract_op& probe) {
  auto s = init.clone();
  for (const abstract_op& o : h) s->apply(o.to_desc());
  return s->apply(probe.to_desc());
}

bool is_perturbing_after(const hist::spec& init,
                         const std::vector<abstract_op>& h,
                         const abstract_op& op, const abstract_op& probe) {
  if (op.pid == probe.pid) return false;  // Op′ must be by a different process
  std::vector<abstract_op> with = h;
  with.push_back(op);
  return response_after(init, with, probe) != response_after(init, h, probe);
}

dp_check check_witness(const hist::spec& init, const dp_witness& w) {
  dp_check r;
  r.cond1 = is_perturbing_after(init, w.h1, w.opp, w.op1);

  r.extension_p_free = true;
  for (const abstract_op& o : w.extension) {
    if (o.pid == w.opp.pid) r.extension_p_free = false;
  }

  std::vector<abstract_op> h2 = w.h1;
  h2.push_back(w.opp);
  h2.push_back(w.op1);
  h2.insert(h2.end(), w.extension.begin(), w.extension.end());
  r.cond2 = is_perturbing_after(init, h2, w.opp, w.op2);

  r.ok = r.cond1 && r.cond2 && r.extension_p_free;
  std::ostringstream os;
  os << "cond1=" << r.cond1 << " cond2=" << r.cond2
     << " p-free-ext=" << r.extension_p_free << " :: " << w.to_string();
  r.detail = os.str();
  return r;
}

namespace {

// Enumerate all sequences of length exactly `len` over `universe`, invoking
// `fn`; returns true if `fn` returned true (early stop).
bool for_each_sequence(const std::vector<abstract_op>& universe, int len,
                       std::vector<abstract_op>& buf,
                       const std::function<bool()>& fn) {
  if (len == 0) return fn();
  for (const abstract_op& o : universe) {
    buf.push_back(o);
    if (for_each_sequence(universe, len - 1, buf, fn)) return true;
    buf.pop_back();
  }
  return false;
}

}  // namespace

dp_search_result search_witness(const hist::spec& init,
                                const std::vector<abstract_op>& universe,
                                int max_h1, int max_ext) {
  dp_search_result res;
  std::vector<abstract_op> h1;
  for (int len1 = 0; len1 <= max_h1 && !res.found; ++len1) {
    h1.clear();
    for_each_sequence(universe, len1, h1, [&] {
      for (const abstract_op& opp : universe) {
        for (const abstract_op& op1 : universe) {
          ++res.explored;
          if (!is_perturbing_after(init, h1, opp, op1)) continue;
          // cond1 holds; search for a p-free extension enabling cond2.
          std::vector<abstract_op> pfree;
          for (const abstract_op& o : universe) {
            if (o.pid != opp.pid) pfree.push_back(o);
          }
          std::vector<abstract_op> ext;
          for (int len2 = 0; len2 <= max_ext && !res.found; ++len2) {
            ext.clear();
            for_each_sequence(pfree, len2, ext, [&] {
              std::vector<abstract_op> h2 = h1;
              h2.push_back(opp);
              h2.push_back(op1);
              h2.insert(h2.end(), ext.begin(), ext.end());
              for (const abstract_op& op2 : universe) {
                ++res.explored;
                if (is_perturbing_after(init, h2, opp, op2)) {
                  res.found = true;
                  res.witness = {h1, opp, op1, ext, op2};
                  return true;
                }
              }
              return false;
            });
          }
          if (res.found) return true;
        }
      }
      return false;
    });
  }
  return res;
}

int count_successive_perturbs(const hist::spec& init,
                              const std::vector<abstract_op>& h,
                              const abstract_op& op, const abstract_op& probe,
                              int limit) {
  std::vector<abstract_op> cur = h;
  int count = 0;
  for (int i = 0; i < limit; ++i) {
    hist::value_t before = response_after(init, cur, probe);
    cur.push_back(op);
    hist::value_t after = response_after(init, cur, probe);
    if (before != after) ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Appendix witnesses. Process 0 plays p; process 1 plays q (and r).

dp_witness register_witness() {
  // Lemma 3: write_p(v1) perturbs read_q after ∅; extend with write_q(v0).
  dp_witness w;
  w.opp = {0, hist::opcode::reg_write, 1, 0};
  w.op1 = {1, hist::opcode::reg_read, 0, 0};
  w.extension = {{1, hist::opcode::reg_write, 0, 0}};
  w.op2 = {1, hist::opcode::reg_read, 0, 0};
  return w;
}

dp_witness counter_witness() {
  // Lemma 5: Increment_p perturbs read_q after ∅; empty p-free extension.
  dp_witness w;
  w.opp = {0, hist::opcode::ctr_add, 1, 0};
  w.op1 = {1, hist::opcode::ctr_read, 0, 0};
  w.extension = {};
  w.op2 = {1, hist::opcode::ctr_read, 0, 0};
  return w;
}

dp_witness cas_witness() {
  // Lemma 6: CAS_p(v0,v1) perturbs CAS_q(v0,v1) after ∅; extend with
  // CAS_q(v1,v0).
  dp_witness w;
  w.opp = {0, hist::opcode::cas, 0, 1};
  w.op1 = {1, hist::opcode::cas, 0, 1};
  w.extension = {{1, hist::opcode::cas, 1, 0}};
  w.op2 = {1, hist::opcode::cas, 0, 1};
  return w;
}

dp_witness faa_witness() {
  // Lemma 7: FAA_p(1) perturbs read_q after ∅; empty p-free extension.
  dp_witness w;
  w.opp = {0, hist::opcode::ctr_add, 1, 0};
  w.op1 = {1, hist::opcode::ctr_read, 0, 0};
  w.extension = {};
  w.op2 = {1, hist::opcode::ctr_read, 0, 0};
  return w;
}

dp_witness queue_witness() {
  // Lemma 8: H1 = Enq_p(v0) ◦ Enq_p(v1); Deq_p perturbs Deq_q; extend with
  // Enq_q(v0) ◦ Enq_q(v1).
  dp_witness w;
  w.h1 = {{0, hist::opcode::enq, 0, 0}, {0, hist::opcode::enq, 1, 0}};
  w.opp = {0, hist::opcode::deq, 0, 0};
  w.op1 = {1, hist::opcode::deq, 0, 0};
  w.extension = {{1, hist::opcode::enq, 0, 0}, {1, hist::opcode::enq, 1, 0}};
  w.op2 = {1, hist::opcode::deq, 0, 0};
  return w;
}

}  // namespace detect::theory
