// pcell<T> — an atomic cell of emulated persistent memory ("base object" /
// shared variable in the paper's model, §2).
//
// Supported primitives mirror the paper: atomic read, write, CAS, exchange.
// Each primitive is exactly one simulator step (the hook fires before the
// physical access), which is the atomicity grain of the model. In
// shared-cache mode a cell carries both its cached value (`cur_`) and its
// persisted image (`persisted_`); `flush()` copies cache → NVM and a crash
// reverts NVM → cache.
//
// Width: free-running (multi-threaded benchmark) mode relies on std::atomic,
// so T must be trivially copyable; lock-freedom holds up to 16 bytes on
// x86-64 with -mcx16 (Algorithm 2 packs ⟨value, vec⟩ into exactly 16 bytes).
// Under the simulator all accesses are serialized by the step token, so even
// a non-lock-free std::atomic specialization remains correct.
#pragma once

#include <atomic>
#include <cstring>
#include <type_traits>

#include "nvm/hook.hpp"
#include "nvm/pmem.hpp"
#include "wmm/visibility.hpp"

namespace detect::nvm {

template <typename T>
class pcell final : public persistent_base {
  static_assert(std::is_trivially_copyable_v<T>,
                "persistent cells hold raw memory words");

 public:
  explicit pcell(T init = T{}, pmem_domain& dom = pmem_domain::global())
      : cur_(init), persisted_(init), dom_(&dom) {
    dom_->attach(*this);
  }
  ~pcell() { dom_->detach(*this); }

  /// Atomic read. One step. Under a relaxed visibility model the issuing
  /// process's own buffered store wins (store-to-load forwarding); a
  /// forwarded value is not globally visible yet, so the auto-persist
  /// after-read path is skipped for it (drain → persist ordering).
  T load() const {
    hook_access(access::shared_load);
    dom_->counters().add_shared_load();
    if constexpr (sizeof(T) <= wmm::store_buffer::k_max_value) {
      if (const wmm::store_buffer* b = dom_->active_store_buffer()) {
        T fwd;
        if (b->forward(*this, &fwd, sizeof(T))) return fwd;
      }
    }
    T v = cur_.load(std::memory_order_seq_cst);
    after_read(v);
    return v;
  }

  /// Atomic write. One step. Under a relaxed visibility model the store
  /// enters the process's FIFO buffer instead of the cell; it applies (and
  /// only then persists) at its drain step.
  void store(T v) {
    hook_access(access::shared_store);
    dom_->counters().add_shared_store();
    if constexpr (sizeof(T) <= wmm::store_buffer::k_max_value) {
      if (wmm::store_buffer* b = dom_->active_store_buffer()) {
        b->push(*this, &pcell::apply_buffered, &v, sizeof(T));
        return;
      }
    }
    cur_.store(v, std::memory_order_seq_cst);
    after_write(v);
  }

  /// Atomic compare-and-swap. One step. On failure `expected` is refreshed
  /// with the observed value, as with std::atomic.
  bool compare_exchange(T& expected, T desired) {
    hook_access(access::shared_cas);
    dom_->counters().add_shared_cas();
    bool ok = cur_.compare_exchange_strong(expected, desired,
                                           std::memory_order_seq_cst);
    after_write(ok ? desired : expected);
    return ok;
  }

  /// Atomic exchange. One step.
  T exchange(T v) {
    hook_access(access::shared_exchange);
    dom_->counters().add_shared_exchange();
    T old = cur_.exchange(v, std::memory_order_seq_cst);
    after_write(v);
    return old;
  }

  /// Explicit persist of the current cached value (shared-cache mode). Its
  /// own step when invoked by algorithm code.
  void flush() {
    hook_access(access::flush);
    flush_in_step();
  }

  /// Debug/metrics read that bypasses the hook and counters. Not part of the
  /// algorithmic access sequence; never use from operation code.
  T peek() const noexcept { return cur_.load(std::memory_order_relaxed); }

  /// Persisted image (what a crash would revert to). Debug/tests only.
  T peek_persisted() const noexcept {
    return persisted_.load(std::memory_order_relaxed);
  }

  pmem_domain& domain() const noexcept { return *dom_; }

 private:
  /// Drain-time replay of a buffered store: apply the raw value to the cell
  /// with the same memory order and persistency side effects the direct
  /// store path would have had (wmm::store_buffer::apply_fn).
  static void apply_buffered(persistent_base& cell, const unsigned char* raw) {
    auto& self = static_cast<pcell&>(cell);
    T v;
    std::memcpy(&v, raw, sizeof(T));
    self.cur_.store(v, std::memory_order_seq_cst);
    self.after_write(v);
  }

  // Izraelevitz-style automatic transformation: persist the location and
  // fence within the same atomic step as the access itself, so that no other
  // process can observe a value that is not yet durable.
  //
  // Under buffered persistency neither path runs: stores sit in the
  // write-behind journal until an explicit flush or the domain's next epoch
  // boundary, so a crash can discard them.
  void after_write(T v) noexcept {
    if (dom_->buffered()) {
      dom_->note_dirty(*this);
      return;
    }
    if (dom_->model() == cache_model::private_cache) {
      persisted_.store(v, std::memory_order_relaxed);
    } else if (dom_->auto_persist()) {
      flush_in_step();
      dom_->fence();
    }
  }
  void after_read(T) const noexcept {
    if (dom_->buffered()) return;
    if (dom_->model() == cache_model::shared_cache && dom_->auto_persist()) {
      persisted_.store(cur_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      dom_->counters().add_flush();
      dom_->fence();
    }
  }
  void flush_in_step() noexcept {
    persisted_.store(cur_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    dom_->counters().add_flush();
  }

  void revert_to_persisted() noexcept override {
    cur_.store(persisted_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  }
  void persist_now() noexcept override {
    persisted_.store(cur_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
  std::size_t image_size() const noexcept override { return sizeof(T); }
  void save_raw(std::uint8_t* cur, std::uint8_t* persisted) const override {
    const T c = cur_.load(std::memory_order_relaxed);
    const T p = persisted_.load(std::memory_order_relaxed);
    std::memcpy(cur, &c, sizeof(T));
    std::memcpy(persisted, &p, sizeof(T));
  }
  void load_raw(const std::uint8_t* cur,
                const std::uint8_t* persisted) override {
    T c, p;
    std::memcpy(&c, cur, sizeof(T));
    std::memcpy(&p, persisted, sizeof(T));
    cur_.store(c, std::memory_order_relaxed);
    persisted_.store(p, std::memory_order_relaxed);
    // A migrated image may arrive with cur != persisted; keep the buffered
    // journal's every-divergence-is-journaled invariant.
    if (dom_->buffered()) dom_->note_dirty(*this);
  }

  mutable std::atomic<T> cur_;
  mutable std::atomic<T> persisted_;
  pmem_domain* dom_;
};

}  // namespace detect::nvm
