// Emulated persistent-memory domain.
//
// The paper's two memory models (§2, §6):
//   * private-cache model — primitive operations apply directly to NVM; a
//     crash loses only volatile (per-process local) state.
//   * shared-cache model  — primitives apply to a volatile shared cache;
//     explicit flush/fence instructions move values to NVM; a crash reverts
//     the cache to the last persisted image.
//
// A `pmem_domain` owns the model choice and the crash bookkeeping for every
// persistent cell registered with it. `crash_reset()` implements the
// system-wide crash: in shared-cache mode each cell's cached value reverts to
// its persisted image; in private-cache mode shared memory survives verbatim.
//
// `auto_persist` applies the syntactic transformation of Izraelevitz et al.
// the paper cites in §6: every shared access is followed (within the same
// atomic step) by a flush of the touched location plus a fence, which makes
// the shared-cache execution indistinguishable from a private-cache one while
// exposing the persistency-instruction cost (experiment E7).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "nvm/stats.hpp"

namespace detect::wmm {
class store_buffer;
}

namespace detect::nvm {

enum class cache_model : std::uint8_t { private_cache, shared_cache };

/// Persistency-visibility model, orthogonal to the cache model:
///   * strict   — every store is crash-persistent the moment it executes
///     (private-cache) or whenever auto_persist flushes it (shared-cache).
///     This is the historical behavior.
///   * buffered — the emulated persistency controller write-behind buffers
///     stores; they become crash-persistent only at explicit flushes and at
///     epoch boundaries (`epoch_boundary()`, which the client runtime calls
///     at every operation-visibility event). A crash discards everything
///     after the last boundary — whole-operation rollbacks that the strict
///     model can never produce, while still honoring durable linearizability
///     because no response is emitted before its epoch is drained.
enum class persist_model : std::uint8_t { strict, buffered };

/// Stable wire name ("strict" / "buffered").
inline const char* persist_name(persist_model m) noexcept {
  return m == persist_model::buffered ? "buffered" : "strict";
}

/// Inverse of persist_name; false on unknown names (`out` untouched).
inline bool persist_from_name(const std::string& name,
                              persist_model& out) noexcept {
  if (name == "strict") {
    out = persist_model::strict;
    return true;
  }
  if (name == "buffered") {
    out = persist_model::buffered;
    return true;
  }
  return false;
}

/// Raw snapshot of one persistent cell: its cached value and its persisted
/// image, as opaque bytes. The unit of the portable NVM representation that
/// object migration moves between domains (see save_image / load_image).
struct cell_image {
  std::vector<std::uint8_t> cur;
  std::vector<std::uint8_t> persisted;
};

/// The persistent representation of a group of cells (e.g. every cell one
/// registry object attached during construction), in attach order.
using pmem_image = std::vector<cell_image>;

/// Base class for everything that lives in emulated NVM and needs crash /
/// persist bookkeeping. Cells link themselves into their domain's intrusive
/// list on construction and out on destruction.
class persistent_base {
 public:
  persistent_base(const persistent_base&) = delete;
  persistent_base& operator=(const persistent_base&) = delete;

  /// Raw snapshot of this cell (cached value + persisted image). Bypasses
  /// access hooks and counters: migration runs between executions, outside
  /// the measured access sequence.
  cell_image save_image() const;

  /// Inverse of save_image(). Throws std::invalid_argument when the image's
  /// byte width does not match this cell's value type.
  void load_image(const cell_image& img);

 protected:
  persistent_base() = default;
  ~persistent_base() = default;

 private:
  friend class pmem_domain;
  /// True when the cached value byte-equals the persisted image.
  bool image_clean() const;
  /// Revert cached value to the persisted image (shared-cache crash).
  virtual void revert_to_persisted() noexcept = 0;
  /// Checkpoint the cached value as persisted (initialization / full sync).
  virtual void persist_now() noexcept = 0;
  /// Byte width of the cell's value type (one of cur/persisted).
  virtual std::size_t image_size() const noexcept = 0;
  /// Copy the cached value / persisted image into `cur` / `persisted`
  /// (each image_size() bytes).
  virtual void save_raw(std::uint8_t* cur, std::uint8_t* persisted) const = 0;
  /// Inverse of save_raw.
  virtual void load_raw(const std::uint8_t* cur,
                        const std::uint8_t* persisted) = 0;

  persistent_base* prev_ = nullptr;
  persistent_base* next_ = nullptr;
  /// In the domain's write-behind journal (buffered persistency only).
  bool journaled_ = false;
};

/// Snapshot `cells` (in order) into one portable image.
pmem_image save_image(const std::vector<persistent_base*>& cells);

/// Load `image` back into `cells`. Throws std::invalid_argument on a layout
/// mismatch (different cell count or byte widths) — the caller pairs images
/// with an identically-constructed cell group.
void load_image(const std::vector<persistent_base*>& cells,
                const pmem_image& image);

class pmem_domain {
 public:
  pmem_domain() = default;
  pmem_domain(const pmem_domain&) = delete;
  pmem_domain& operator=(const pmem_domain&) = delete;

  /// Process-wide default domain. Individual worlds/tests may instantiate
  /// their own to isolate crash bookkeeping.
  static pmem_domain& global();

  cache_model model() const noexcept { return model_; }
  void set_model(cache_model m) noexcept { model_ = m; }

  bool auto_persist() const noexcept { return auto_persist_; }
  void set_auto_persist(bool on) noexcept { auto_persist_ = on; }

  persist_model persist() const noexcept { return persist_; }
  void set_persist_model(persist_model m) noexcept { persist_ = m; }
  /// True when stores are write-behind buffered (see persist_model).
  bool buffered() const noexcept { return persist_ == persist_model::buffered; }

  /// Record that `cell`'s cached value may now diverge from its persisted
  /// image (a buffered store, or a migration image load). Cells register
  /// once per boundary interval; the journal is what epoch_boundary() and
  /// crash_reset() settle instead of walking every cell in the domain.
  /// Hot path: not locked — buffered persistency only runs under the
  /// simulator, whose step token already serializes all accesses (the
  /// free-running threads backend rejects buffered mode).
  void note_dirty(persistent_base& cell) {
    if (cell.journaled_) return;
    cell.journaled_ = true;
    journal_.push_back(&cell);
  }

  /// Epoch boundary of the buffered model: drain the write-behind journal so
  /// everything stored so far is crash-persistent. No-op under strict
  /// persistency. The client runtime calls this at every history event
  /// (invoke/response/recovery), which keeps completed operations durable —
  /// the journal makes each boundary O(cells dirtied since the last one).
  void epoch_boundary() noexcept {
    if (!buffered() || journal_.empty()) return;
    drain_journal();
  }

  /// Deliver the memory effect of a system-wide crash. Must be called while
  /// no process is mid-access (the simulator quiesces every process first).
  void crash_reset() noexcept;

  /// Did the most recent crash_reset() discard stores that were not yet
  /// persistent? Only ever true under buffered persistency — the signature
  /// bit of a crash state the strict model cannot reach.
  bool last_crash_lost() const noexcept { return last_crash_lost_; }

  /// Checkpoint every cell's current value as persisted.
  void persist_all() noexcept;

  stats& counters() noexcept { return stats_; }
  const stats& counters() const noexcept { return stats_; }

  /// Explicit ordering fence (counted; the emulation is sequentially
  /// consistent so the fence has no semantic effect here).
  void fence() noexcept { stats_.add_fence(); }

  void attach(persistent_base& cell);
  void detach(persistent_base& cell) noexcept;

  /// Persistent cells currently attached to this domain.
  std::uint64_t cells_attached() const noexcept {
    return cells_attached_.load(std::memory_order_relaxed);
  }
  /// Persisted-image bytes of the attached cells (one image per cell — the
  /// crash-surviving footprint, the quantity the paper's space bounds count).
  std::uint64_t bytes_attached() const noexcept {
    return bytes_attached_.load(std::memory_order_relaxed);
  }

  /// While set, every attach() also appends the cell to `*sink` (in attach
  /// order). Harnesses wrap registry factories with this to learn which
  /// cells a freshly constructed object owns — the cell group whose
  /// pmem_image migration transplants. Pass nullptr to stop recording.
  void set_attach_recorder(std::vector<persistent_base*>* sink) noexcept;

  /// Store buffer of the process currently holding the step token, under a
  /// relaxed visibility model (wmm::visibility_model tso/pso). Null — the
  /// default, and always the case under sc — means stores apply directly
  /// and loads read the cell, the historical sequentially consistent path.
  /// `sim::world` points this at the stepping process's buffer for exactly
  /// the duration of its step; pcell routes stores/loads through it.
  wmm::store_buffer* active_store_buffer() const noexcept {
    return active_buffer_;
  }
  void set_active_store_buffer(wmm::store_buffer* b) noexcept {
    active_buffer_ = b;
  }

 private:
  void drain_journal() noexcept;

  std::mutex mu_;
  persistent_base* head_ = nullptr;
  /// Cells whose cached value may diverge from their persisted image since
  /// the last boundary (buffered persistency only). See note_dirty().
  std::vector<persistent_base*> journal_;
  cache_model model_ = cache_model::private_cache;
  persist_model persist_ = persist_model::strict;
  bool last_crash_lost_ = false;
  bool auto_persist_ = false;
  std::vector<persistent_base*>* attach_sink_ = nullptr;
  wmm::store_buffer* active_buffer_ = nullptr;
  /// Footprint counters (relaxed atomics: metrics only, readable without the
  /// mutex; attach/detach already serialize the updates under mu_).
  std::atomic<std::uint64_t> cells_attached_{0};
  std::atomic<std::uint64_t> bytes_attached_{0};
  stats stats_;
};

/// RAII attach recording over one domain: construction starts recording into
/// `sink`, destruction stops it.
class attach_recording {
 public:
  attach_recording(pmem_domain& dom, std::vector<persistent_base*>& sink)
      : dom_(&dom) {
    dom_->set_attach_recorder(&sink);
  }
  ~attach_recording() { dom_->set_attach_recorder(nullptr); }
  attach_recording(const attach_recording&) = delete;
  attach_recording& operator=(const attach_recording&) = delete;

 private:
  pmem_domain* dom_;
};

}  // namespace detect::nvm
