// Algorithm 3 (max register): correctness without auxiliary state, recovery
// by re-invocation, double-collect snapshot validity under contention.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace {

using namespace detect;
using namespace detect::test;

scenario max_scenario(int nprocs,
                      std::function<scripts(api::max_reg)> make_scripts) {
  return one_object<api::max_reg>("max_reg", nprocs, std::move(make_scripts));
}

TEST(max_register, declares_no_aux_state) {
  auto h = api::harness::builder().procs(2).build();
  api::max_reg m = h.add_max_reg();
  EXPECT_FALSE(m.object().wants_aux_reset());
}

TEST(max_register, sequential_monotonicity) {
  auto cfg = max_scenario(1, [](api::max_reg m) {
    return scripts{{0,
                    {m.write_max(5), m.read(), m.write_max(3), m.read(),
                     m.write_max(9), m.read()}}};
  });
  auto out = run_scenario(cfg, 1);
  EXPECT_TRUE(out.check.ok) << out.check.message;
}

TEST(max_register, concurrent_writers_many_seeds) {
  auto cfg = max_scenario(3, [](api::max_reg m) {
    return scripts{
        {0, {m.write_max(1), m.write_max(4)}},
        {1, {m.write_max(2), m.read()}},
        {2, {m.read(), m.write_max(3)}},
    };
  });
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_TRUE(out.check.ok) << "seed " << seed << "\n" << out.check.message;
  }
}

TEST(max_register, crash_sweep) {
  auto cfg = max_scenario(2, [](api::max_reg m) {
    return scripts{
        {0, {m.write_max(5), m.read()}},
        {1, {m.write_max(3), m.read()}},
    };
  });
  crash_sweep(cfg, 3);
}

TEST(max_register, crash_fuzz_heavy) {
  auto cfg = max_scenario(3, [](api::max_reg m) {
    return scripts{
        {0, {m.write_max(1), m.write_max(6)}},
        {1, {m.write_max(2), m.read()}},
        {2, {m.read(), m.write_max(4)}},
    };
  });
  crash_fuzz(cfg, 150, 3);
}

TEST(max_register, recovery_reinvokes_write_idempotently) {
  // Crash a write at every step; re-invocation must never shrink the value
  // and the verdict is always `linearized` (never fail).
  auto cfg = max_scenario(2, [](api::max_reg m) {
    return scripts{
        {0, {m.write_max(7), m.read()}},
        {1, {m.read()}},
    };
  });
  run_outcome base = run_scenario(cfg, 5);
  ASSERT_TRUE(base.check.ok);
  for (std::uint64_t k = 0; k < base.report.steps; ++k) {
    auto out = run_scenario(cfg, 5, {k});
    ASSERT_TRUE(out.check.ok) << "crash at " << k << "\n" << out.check.message;
    // No fail verdicts should ever be recorded for this object.
    EXPECT_EQ(out.log_text.find("FAIL"), std::string::npos)
        << "crash at " << k << "\n"
        << out.log_text;
  }
}

TEST(max_register, read_terminates_under_fair_schedules) {
  // The double collect is lock-free, not wait-free; fair random schedules
  // must still let it finish.
  auto cfg = max_scenario(4, [](api::max_reg m) {
    return scripts{
        {0, {m.write_max(1), m.write_max(2)}},
        {1, {m.write_max(3), m.write_max(4)}},
        {2, {m.write_max(5), m.write_max(6)}},
        {3, {m.read(), m.read()}},
    };
  });
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    auto out = run_scenario(cfg, seed);
    ASSERT_FALSE(out.report.hit_step_limit) << "reader starved at seed " << seed;
    ASSERT_TRUE(out.check.ok) << out.check.message;
  }
}

class max_register_property
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(max_register_property, correct_under_fuzz) {
  auto [seed, crashes] = GetParam();
  auto cfg = max_scenario(2, [](api::max_reg m) {
    return scripts{
        {0, {m.write_max(2), m.read()}},
        {1, {m.write_max(5), m.read()}},
    };
  });
  crash_fuzz(cfg, 10, crashes, static_cast<std::uint64_t>(seed) * 32452843);
}

INSTANTIATE_TEST_SUITE_P(sweep, max_register_property,
                         ::testing::Combine(::testing::Range(1, 7),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
