// detect::serve::session — a client's handle into the serving front-end.
//
// Clients open sessions against a serve::server and submit asynchronous
// operation streams: each submit() carries a typed op_desc (built with the
// usual api handles — `ctr.add(1)`, `q.enq(7)`) plus an optional completion
// callback. Admission is decided synchronously — the returned submit_status
// says whether the op entered the ingest queues — while execution and the
// completion callback happen later, when a batch round drains the op's
// shard queue through the executor.
//
// Ordering contract: ops of one session targeting objects on the same shard
// execute in submission order (sessions map onto runtime processes, and the
// executor preserves per-process per-shard program order). Ops of one
// session on *different* shards may overlap — that concurrency is the point
// of sharding, and per-object linearizability is what check() certifies.
//
// `overloaded` is retryable by contract: it means a backpressure limit (shard
// queue high-water, the session's token bucket, or the global inflight cap)
// said "not now", never that the op was half-accepted.
#pragma once

#include <cstdint>
#include <functional>

#include "history/event.hpp"

namespace detect::serve {

class server;

enum class submit_status : std::uint8_t {
  admitted,       // queued; a completion callback will eventually fire
  overloaded,     // backpressure — retry later (nothing was enqueued)
  shutting_down,  // server is draining; no new work accepted
  invalid_op,     // op targets an object the server does not host
};

const char* submit_status_name(submit_status s) noexcept;

inline bool admitted(submit_status s) noexcept {
  return s == submit_status::admitted;
}

/// Delivered to the submitter's callback when an admitted op completes.
struct completion {
  std::uint64_t ticket = 0;   // the submit's admission ticket
  std::uint64_t session = 0;  // submitting session id
  std::uint32_t object = 0;   // target object
  hist::value_t value = 0;    // the op's response value
  /// Submit → completion, in the server's latency unit (batch rounds in
  /// deterministic mode, microseconds in threaded mode).
  std::uint64_t latency = 0;
};

using completion_fn = std::function<void(const completion&)>;

/// Copyable handle; all state lives in the server's session record. Valid
/// only while the issuing server is alive.
class session {
 public:
  session() = default;

  std::uint64_t id() const noexcept { return id_; }
  /// The runtime process this session multiplexes onto (sessions map onto
  /// the executor's nprocs by id % nprocs).
  int pid() const noexcept { return pid_; }

  /// Submit one op. On `admitted`, `on_complete` (if any) fires exactly once
  /// from a later batch round — from pump()/drain() in deterministic mode,
  /// from the dispatcher thread in threaded mode. Any other status means the
  /// op was not enqueued and no callback will fire.
  submit_status submit(const hist::op_desc& op, completion_fn on_complete = {});

  // Per-session counters (snapshots; the server owns the live values).
  std::uint64_t submitted() const;
  std::uint64_t admitted() const;
  std::uint64_t rejected() const;
  std::uint64_t completed() const;

 private:
  friend class server;
  session(server* srv, std::uint64_t id, int pid)
      : srv_(srv), id_(id), pid_(pid) {}

  server* srv_ = nullptr;
  std::uint64_t id_ = 0;
  int pid_ = 0;
};

}  // namespace detect::serve
