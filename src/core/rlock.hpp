// Recoverable try-lock — the paper's §6 connects detectability to the
// recoverable mutual exclusion (RME) line of work [10, 11, 12, 19, 20]; this
// object is the detectable building block of such locks.
//
// State: one CAS cell holding the owner (0 = free, pid+1 = held). Ownership
// slots are per-process and only the holder ever clears its own slot, which
// kills ABA on the acquire side: on recovery, owner == pid+1 proves *this*
// process's acquire was linearized (its previous critical section must have
// ended with a completed release before the client could invoke another
// acquire). The release side cannot be disambiguated from the owner cell
// alone — "I released" and "my release-when-not-holding returned false" leave
// the same shared state — so release uses the standard checkpoint capsule
// (RD_p records whether we held the lock at entry).
//
// The recovered holder resumes *inside* its critical section, which is
// exactly the RME behaviour: a crash does not release the lock; the owner
// learns on recovery that it still holds it.
#pragma once

#include "core/object.hpp"
#include "nvm/pcell.hpp"
#include "nvm/pvar.hpp"

namespace detect::core {

class recoverable_lock final : public detectable_object {
 public:
  recoverable_lock(int nprocs, announcement_board& board, nvm::pmem_domain& dom)
      : board_(&board), owner_(0, dom) {
    for (int p = 0; p < nprocs; ++p) {
      rd_held_.push_back(std::make_unique<nvm::pvar<std::uint8_t>>(0, dom));
    }
  }

  value_t invoke(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::lock_try:
        return try_lock(pid);
      case hist::opcode::lock_release:
        return release(pid);
      default:
        throw std::invalid_argument("recoverable_lock: bad opcode");
    }
  }

  recovery_result recover(int pid, const hist::op_desc& op) override {
    switch (op.code) {
      case hist::opcode::lock_try:
        return try_lock_recover(pid);
      case hist::opcode::lock_release:
        return release_recover(pid);
      default:
        throw std::invalid_argument("recoverable_lock: bad opcode");
    }
  }

  /// Current holder pid, or -1 when free. Debug/assertion use.
  int holder() const noexcept {
    std::int64_t o = owner_.peek();
    return o == 0 ? -1 : static_cast<int>(o - 1);
  }

 private:
  value_t try_lock(int p) {
    ann_fields& ann = board_->of(p);
    std::int64_t cur = owner_.load();
    bool got = false;
    if (cur == 0) {
      std::int64_t expect = 0;
      got = owner_.compare_exchange(expect, p + 1);
    }
    ann.resp.store(got ? hist::k_true : hist::k_false);
    return got ? hist::k_true : hist::k_false;
  }

  recovery_result try_lock_recover(int p) {
    ann_fields& ann = board_->of(p);
    value_t r = ann.resp.load();
    if (r != hist::k_bottom) return recovery_result::linearized(r);
    if (owner_.load() == p + 1) {
      // Only we install pid+1 and only we clear it: the acquire happened.
      ann.resp.store(hist::k_true);
      return recovery_result::linearized(hist::k_true);
    }
    // Either the CAS never ran or it lost — nothing observable was written.
    return recovery_result::failed();
  }

  value_t release(int p) {
    ann_fields& ann = board_->of(p);
    bool held = owner_.load() == p + 1;
    rd_held_[p]->store(held ? 1 : 0);
    ann.cp.store(1);
    if (held) owner_.store(0);
    ann.resp.store(held ? hist::k_true : hist::k_false);
    return held ? hist::k_true : hist::k_false;
  }

  recovery_result release_recover(int p) {
    ann_fields& ann = board_->of(p);
    value_t r = ann.resp.load();
    if (r != hist::k_bottom) return recovery_result::linearized(r);
    if (ann.cp.load() == 0) return recovery_result::failed();
    if (rd_held_[p]->load() == 0) {
      // We observed not-holding: the release was linearized at that read.
      ann.resp.store(hist::k_false);
      return recovery_result::linearized(hist::k_false);
    }
    if (owner_.load() == p + 1) {
      // Still holding: the store never executed.
      return recovery_result::failed();
    }
    // We held and the slot is no longer ours — only our store clears it.
    ann.resp.store(hist::k_true);
    return recovery_result::linearized(hist::k_true);
  }

  announcement_board* board_;
  nvm::pcell<std::int64_t> owner_;
  std::vector<std::unique_ptr<nvm::pvar<std::uint8_t>>> rd_held_;
};

}  // namespace detect::core
